"""Central/marginal decomposition statistics."""

import numpy as np
import pytest

from repro.cluster.perfmodel import PerfModel
from repro.core.decompose import decompose_partition
from repro.gnn.coefficients import build_aggregation


@pytest.fixture(scope="module")
def stats_and_parts(tiny_dataset, tiny_parts):
    deg = tiny_dataset.graph.degrees.astype(np.float64)
    out = []
    for part in tiny_parts:
        agg = build_aggregation(part, deg, "gcn")
        out.append((decompose_partition(part, agg), part, agg))
    return out


def test_counts_partition_rows(stats_and_parts):
    for stats, part, _ in stats_and_parts:
        assert stats.n_central + stats.n_marginal == stats.n_owned == part.n_owned
        assert stats.n_marginal == int(part.marginal_mask.sum())


def test_nnz_split_consistent(stats_and_parts):
    for stats, _, agg in stats_and_parts:
        assert stats.agg_nnz_central + stats.agg_nnz_marginal == stats.agg_nnz_total
        assert stats.agg_nnz_total == agg.nnz


def test_fractions_in_unit_interval(stats_and_parts):
    for stats, _, _ in stats_and_parts:
        assert 0.0 <= stats.central_row_fraction <= 1.0
        assert stats.central_row_fraction + stats.marginal_row_fraction == pytest.approx(1.0)


def test_compute_times_positive_and_additive(stats_and_parts):
    perf = PerfModel()
    for stats, _, _ in stats_and_parts:
        central = stats.central_compute_time(16, 8, perf)
        marginal = stats.marginal_compute_time(16, 8, perf)
        assert central > 0 and marginal > 0
        # Stage split costs two launches instead of one, so the sum can
        # slightly exceed the fused time but never undercut the FLOPs.
        fused_flops_time = perf.compute_time(
            PerfModel.spmm_flops(stats.agg_nnz_total, 16),
            PerfModel.gemm_flops(stats.n_owned, 16, 8),
        )
        assert central + marginal >= fused_flops_time - 4 * perf.kernel_launch_s


def test_dense_factor_scales_gemm(stats_and_parts):
    perf = PerfModel()
    stats = stats_and_parts[0][0]
    single = stats.central_compute_time(16, 8, perf, dense_factor=1.0)
    double = stats.central_compute_time(16, 8, perf, dense_factor=2.0)
    assert double > single


# ---------------------------------------------------------------------------
# Row splits (the pipelined executor's permutation) and degenerate cases
# ---------------------------------------------------------------------------
def test_split_rows_partitions_owned_rows(stats_and_parts):
    from repro.core.decompose import split_rows

    for stats, part, _ in stats_and_parts:
        split = split_rows(part)
        assert split.n_central == stats.n_central
        assert split.n_marginal == stats.n_marginal
        merged = np.sort(split.permutation)
        assert np.array_equal(merged, np.arange(part.n_owned))
        # Central rows truly have no remote neighbor, marginal rows do.
        assert not part.marginal_mask[split.central_rows].any()
        assert part.marginal_mask[split.marginal_rows].all()


def test_single_partition_has_zero_marginal_nodes(tiny_dataset, single_part_book):
    """A 1-partition cluster has no remote edges: everything is central and
    the marginal comm stage must be a no-op."""
    from repro.core.decompose import split_rows
    from repro.graph.partition.book import build_local_partitions

    (part,) = build_local_partitions(tiny_dataset.graph, single_part_book)
    agg = build_aggregation(part, tiny_dataset.graph.degrees.astype(np.float64), "gcn")
    stats = decompose_partition(part, agg)
    assert stats.n_marginal == 0
    assert stats.n_central == stats.n_owned == tiny_dataset.num_nodes
    assert stats.agg_nnz_marginal == 0
    assert stats.agg_nnz_central == stats.agg_nnz_total == agg.nnz
    assert stats.central_row_fraction == 1.0
    split = split_rows(part)
    assert split.n_marginal == 0
    assert split.marginal_rows.size == 0
    # No marginal rows -> no boundary rows to exchange.
    assert part.send_map == {} and part.recv_map == {}


def test_all_marginal_partition():
    """Alternating ownership on a path graph makes every node marginal:
    the central sub-step is empty and all compute waits on messages."""
    from repro.core.decompose import split_rows
    from repro.graph.graph import Graph
    from repro.graph.partition.book import PartitionBook, build_local_partitions

    src = np.array([0, 1, 2, 3])
    dst = np.array([1, 2, 3, 4])
    graph = Graph.from_edges(src, dst, 5)
    book = PartitionBook(
        part_of=np.array([0, 1, 0, 1, 0], dtype=np.int32), num_parts=2
    )
    for part in build_local_partitions(graph, book):
        agg = build_aggregation(part, graph.degrees.astype(np.float64), "gcn")
        stats = decompose_partition(part, agg)
        assert stats.n_central == 0
        assert stats.n_marginal == stats.n_owned
        assert stats.marginal_row_fraction == 1.0
        split = split_rows(part)
        assert split.n_central == 0
        assert np.array_equal(split.permutation, split.marginal_rows)


def test_degenerate_splits_still_train_bitwise(tiny_dataset):
    """The executor must survive an all-marginal device: an alternating
    2-partition book over a path-like subrange gives devices with empty
    central blocks, and the overlap engine must still match the fused
    engine exactly."""
    from repro.cluster.cluster import Cluster
    from repro.cluster.exchange import ExactHaloExchange
    from repro.graph.partition.book import PartitionBook

    # Alternating ownership maximizes marginal nodes on the real dataset.
    part_of = (np.arange(tiny_dataset.num_nodes) % 2).astype(np.int32)
    book = PartitionBook(part_of=part_of, num_parts=2)

    def run(overlap):
        cluster = Cluster(
            tiny_dataset, book, hidden_dim=8, num_layers=2, dropout=0.5,
            seed=3, overlap=overlap,
        )
        exchange = ExactHaloExchange()
        return [cluster.train_epoch(exchange, e).loss for e in range(2)]

    assert run(True) == run(False)
