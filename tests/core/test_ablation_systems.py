"""Ablation systems: quantization-only and overlap-only variants."""

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.core.scheduler import schedule_quantized_no_overlap, schedule_vanilla
from repro.core.trainer import train
from repro.graph.partition.api import partition_graph


@pytest.fixture(scope="module")
def case(tiny_single_label_dataset):
    ds = tiny_single_label_dataset
    book = partition_graph(ds.graph, 4, method="metis", seed=0)
    cfg = RunConfig(epochs=6, hidden_dim=16, eval_every=3, dropout=0.0,
                    reassign_period=3)
    return ds, book, cfg


def test_ablation_systems_train(case):
    ds, book, cfg = case
    for system in ("adaqp-no-overlap", "vanilla-overlap"):
        result = train(system, ds, book, "2M-2D", cfg)
        assert np.isfinite(result.final_val)
        assert result.epochs == 6


def test_quantization_only_faster_than_vanilla(case):
    ds, book, cfg = case
    vanilla = train("vanilla", ds, book, "2M-2D", cfg)
    quant_only = train("adaqp-no-overlap", ds, book, "2M-2D", cfg)
    assert quant_only.throughput > vanilla.throughput


def test_overlap_only_matches_vanilla_accuracy_exactly(case):
    """Full-precision overlap changes scheduling, not numerics."""
    ds, book, cfg = case
    vanilla = train("vanilla", ds, book, "2M-2D", cfg)
    overlap = train("vanilla-overlap", ds, book, "2M-2D", cfg)
    assert vanilla.curve_loss == overlap.curve_loss
    assert vanilla.final_val == overlap.final_val
    assert overlap.epoch_time_mean <= vanilla.epoch_time_mean + 1e-12


def test_full_adaqp_at_least_as_fast_as_either_part(case):
    ds, book, cfg = case
    adaqp = train("adaqp", ds, book, "2M-2D", cfg)
    quant_only = train("adaqp-no-overlap", ds, book, "2M-2D", cfg)
    overlap_only = train("vanilla-overlap", ds, book, "2M-2D", cfg)
    assert adaqp.throughput >= 0.95 * quant_only.throughput
    assert adaqp.throughput > overlap_only.throughput


def test_no_overlap_schedule_stacks_quant_on_critical_path(case):
    """schedule_quantized_no_overlap = vanilla schedule + quant kernels."""
    from repro.cluster.cluster import Cluster
    from repro.cluster.exchange import FixedBitProvider, QuantizedHaloExchange
    from repro.cluster.perfmodel import PerfModel
    from repro.comm.costmodel import LinkCostModel
    from repro.comm.topology import parse_topology

    ds, book, cfg = case
    cluster = Cluster(ds, book, model_kind="gcn", hidden_dim=16, num_layers=3,
                      dropout=0.0, seed=0)
    record = cluster.train_epoch(
        QuantizedHaloExchange(FixedBitProvider(2), np.random.default_rng(0)), 0
    )
    cost = LinkCostModel.for_topology(parse_topology("2M-2D"))
    perf = PerfModel()
    no_overlap = schedule_quantized_no_overlap(record, cost, perf)
    vanilla_view = schedule_vanilla(record, cost, perf)
    assert no_overlap.quant_time > 0
    assert no_overlap.epoch_time == pytest.approx(
        vanilla_view.epoch_time + no_overlap.quant_time
    )
