"""Bi-objective bit-width assignment: solver correctness and λ semantics."""

import numpy as np
import pytest

from repro.core.bilp import (
    BitWidthProblem,
    GroupSpec,
    evaluate_assignment,
    solve_bruteforce,
    solve_greedy,
    solve_milp,
)


def _problem(lam=0.5, n_groups=4, seed=0):
    rng = np.random.default_rng(seed)
    groups = []
    pairs = [(0, 1), (1, 0)]
    for i in range(n_groups):
        src, dst = pairs[i % 2]
        groups.append(
            GroupSpec(
                src=src,
                dst=dst,
                beta=float(rng.uniform(0.1, 10.0)),
                n_rows=int(rng.integers(10, 100)),
                dim=16,
            )
        )
    theta = {p: 4e-8 for p in pairs}
    gamma = {p: 1e-4 for p in pairs}
    return BitWidthProblem(
        groups=groups, pair_theta=theta, pair_gamma=gamma, lam=lam
    )


def test_payload_bytes_increase_with_bits():
    g = GroupSpec(0, 1, 1.0, 10, 16)
    assert g.payload_bytes(2) < g.payload_bytes(4) < g.payload_bytes(8)


def test_lambda_one_maximizes_bits():
    problem = _problem(lam=1.0)
    for solver in (solve_milp, solve_greedy, solve_bruteforce):
        bits = solver(problem)
        assert np.all(bits == 8), solver.__name__


def test_lambda_zero_minimizes_bits():
    problem = _problem(lam=0.0)
    for solver in (solve_milp, solve_greedy):
        bits = solver(problem)
        assert np.all(bits == 2), solver.__name__


@pytest.mark.parametrize("lam", [0.2, 0.5, 0.8])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_milp_matches_bruteforce_optimum(lam, seed):
    problem = _problem(lam=lam, n_groups=5, seed=seed)
    exact = solve_bruteforce(problem)
    milp = solve_milp(problem)
    assert problem.scalarized(milp) <= problem.scalarized(exact) + 1e-9


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_greedy_close_to_optimum(seed):
    problem = _problem(lam=0.5, n_groups=6, seed=seed)
    exact_val = problem.scalarized(solve_bruteforce(problem))
    greedy_val = problem.scalarized(solve_greedy(problem))
    assert greedy_val <= exact_val * 1.2 + 1e-9


def test_high_beta_groups_get_more_bits():
    """At intermediate λ, the variance-heavy group keeps precision."""
    groups = [
        GroupSpec(0, 1, beta=100.0, n_rows=50, dim=16),
        GroupSpec(0, 1, beta=0.001, n_rows=50, dim=16),
    ]
    problem = BitWidthProblem(
        groups=groups,
        pair_theta={(0, 1): 4e-8},
        pair_gamma={(0, 1): 1e-4},
        lam=0.5,
    )
    bits = solve_milp(problem)
    assert bits[0] >= bits[1]


def test_minimax_targets_straggler_pair():
    """The busy pair gets narrow bits; the idle pair can keep wide ones."""
    groups = [
        GroupSpec(0, 1, beta=1.0, n_rows=2000, dim=64),  # heavy pair
        GroupSpec(1, 0, beta=1.0, n_rows=10, dim=64),  # light pair
    ]
    problem = BitWidthProblem(
        groups=groups,
        pair_theta={(0, 1): 4e-8, (1, 0): 4e-8},
        pair_gamma={(0, 1): 1e-4, (1, 0): 1e-4},
        lam=0.5,
    )
    bits = solve_milp(problem)
    assert bits[0] <= bits[1]


def test_evaluate_assignment_consistency():
    problem = _problem()
    bits = np.full(len(problem.groups), 4)
    summary = evaluate_assignment(problem, bits)
    assert summary["variance"] == pytest.approx(problem.variance(bits))
    assert summary["worst_time"] == pytest.approx(problem.worst_time(bits))
    with pytest.raises(ValueError):
        evaluate_assignment(problem, np.array([4]))


def test_worst_time_is_max_over_pairs():
    problem = _problem(n_groups=4)
    bits = np.full(4, 8)
    per_pair = [problem.pair_time(p, bits) for p in problem.pairs]
    assert problem.worst_time(bits) == max(per_pair)


def test_problem_validation():
    with pytest.raises(ValueError, match="no message groups"):
        BitWidthProblem(groups=[], pair_theta={}, pair_gamma={}, lam=0.5)
    with pytest.raises(ValueError, match="missing cost"):
        BitWidthProblem(
            groups=[GroupSpec(0, 1, 1.0, 1, 1)], pair_theta={}, pair_gamma={}, lam=0.5
        )
    with pytest.raises(ValueError):
        _problem(lam=1.5)


def test_bruteforce_size_guard():
    problem = _problem(n_groups=4)
    big = BitWidthProblem(
        groups=[GroupSpec(0, 1, 1.0, 1, 1)] * 11,
        pair_theta={(0, 1): 1e-8},
        pair_gamma={(0, 1): 0.0},
        lam=0.5,
    )
    with pytest.raises(ValueError):
        solve_bruteforce(big)
    solve_bruteforce(problem)  # within limit


def test_variance_time_tradeoff_curve():
    """Sweeping λ monotonically trades variance against straggler time."""
    variances, times = [], []
    for lam in (0.0, 0.5, 1.0):
        problem = _problem(lam=lam, n_groups=6, seed=5)
        bits = solve_milp(problem)
        variances.append(problem.variance(bits))
        times.append(problem.worst_time(bits))
    assert variances[0] >= variances[1] >= variances[2]
    assert times[0] <= times[1] <= times[2]
