"""Adaptive Bit-width Assigner: tracing, re-assignment, scattering."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.exchange import QuantizedHaloExchange
from repro.comm.costmodel import LinkCostModel
from repro.comm.topology import parse_topology
from repro.core.assigner import AdaptiveBitWidthAssigner
from repro.graph.partition.api import partition_graph


@pytest.fixture(scope="module")
def setup(tiny_dataset):
    book = partition_graph(tiny_dataset.graph, 4, method="metis", seed=0)
    cluster = Cluster(
        tiny_dataset, book, model_kind="gcn", hidden_dim=8, num_layers=2,
        dropout=0.0, seed=0,
    )
    cost = LinkCostModel.for_topology(parse_topology("2M-2D"))
    return cluster, cost


def _assigner(setup, **kwargs):
    cluster, cost = setup
    defaults = dict(lam=0.5, group_size=50, period=2, default_bits=8)
    defaults.update(kwargs)
    return AdaptiveBitWidthAssigner(cluster, cost, **defaults)


def test_default_bits_before_first_solve(setup):
    assigner = _assigner(setup)
    bits = assigner.bits_for(0, "fwd", 0, 1, 10)
    assert np.all(bits == 8)


def test_reassign_after_training_epochs(setup):
    cluster, cost = setup
    assigner = _assigner(setup)
    exchange = QuantizedHaloExchange(
        assigner, np.random.default_rng(0), tracer=assigner
    )
    for epoch in range(3):
        cluster.train_epoch(exchange, epoch)
    assert assigner.num_reassignments >= 1
    assert assigner.assignment_seconds > 0
    hist = assigner.assignment_histogram()
    assert sum(hist.values()) > 0
    assert set(hist) <= {2, 4, 8}


def test_assignments_aligned_with_message_counts(setup):
    cluster, cost = setup
    assigner = _assigner(setup)
    exchange = QuantizedHaloExchange(
        assigner, np.random.default_rng(0), tracer=assigner
    )
    cluster.train_epoch(exchange, 0)
    assigner.reassign()
    for dev in cluster.devices:
        for q, rows in dev.part.send_map.items():
            bits = assigner.bits_for(0, "fwd", dev.rank, q, rows.size)
            assert bits.shape == (rows.size,)
            assert set(np.unique(bits)) <= {2, 4, 8}


def test_observe_records_latest(setup):
    assigner = _assigner(setup)
    rows = np.array([[0.0, 2.0], [1.0, 5.0]], dtype=np.float32)
    assigner.observe("fwd", 0, 0, 1, rows)
    entry = assigner._traces[("fwd", 0, 0, 1)]
    assert np.allclose(entry.value_range, [2.0, 4.0])
    assert entry.dim == 2
    assigner.observe("fwd", 0, 0, 1, rows * 2)
    assert np.allclose(assigner._traces[("fwd", 0, 0, 1)].value_range, [4.0, 8.0])


def test_empty_observation_ignored(setup):
    assigner = _assigner(setup)
    assigner.observe("fwd", 0, 0, 1, np.zeros((0, 4), dtype=np.float32))
    assert ("fwd", 0, 0, 1) not in assigner._traces


def test_set_epoch_period_gating(setup):
    assigner = _assigner(setup, period=5)
    assigner.observe("fwd", 0, 0, 1, np.random.default_rng(0).normal(size=(8, 4)).astype(np.float32))
    assigner.set_epoch(0)  # epoch 0 never triggers
    assert assigner.num_reassignments == 0
    assigner.set_epoch(3)  # not a boundary
    assert assigner.num_reassignments == 0
    assigner.set_epoch(5)
    assert assigner.num_reassignments == 1


def test_lam_extremes_flow_through(setup):
    # λ=1 → pure variance minimization → (almost) everything at max bits —
    # messages with zero traced range (β = 0) gain nothing from precision
    # and legitimately drop to 2 bits via the solver's byte tie-break;
    # λ=0 → pure time minimization → essentially everything at min bits.
    cluster, cost = setup
    for lam, expected, min_frac in ((1.0, 8, 0.95), (0.0, 2, 0.95)):
        assigner = _assigner(setup, lam=lam)
        exchange = QuantizedHaloExchange(
            assigner, np.random.default_rng(0), tracer=assigner
        )
        cluster.train_epoch(exchange, 0)
        assigner.reassign()
        hist = assigner.assignment_histogram()
        total = sum(hist.values())
        assert hist.get(expected, 0) >= min_frac * total


def test_greedy_solver_option(setup):
    cluster, cost = setup
    assigner = _assigner(setup, solver="greedy", group_size=500)
    exchange = QuantizedHaloExchange(
        assigner, np.random.default_rng(0), tracer=assigner
    )
    cluster.train_epoch(exchange, 0)
    assigner.reassign()
    assert assigner.num_reassignments == 1


def test_constructor_validation(setup):
    cluster, cost = setup
    with pytest.raises(ValueError):
        AdaptiveBitWidthAssigner(cluster, cost, group_size=0)
    with pytest.raises(ValueError):
        AdaptiveBitWidthAssigner(cluster, cost, period=0)
    with pytest.raises(ValueError):
        AdaptiveBitWidthAssigner(cluster, cost, solver="simplex")
    with pytest.raises(ValueError):
        AdaptiveBitWidthAssigner(cluster, cost, default_bits=3)
