"""Deep integration tests across the whole stack.

These go beyond per-module checks: numerical weight gradients through the
full distributed pipeline, robustness across seeds and model shapes, and
the end-to-end invariants the reproduction rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.cluster.exchange import ExactHaloExchange, FixedBitProvider, QuantizedHaloExchange
from repro.core.config import RunConfig
from repro.core.trainer import train
from repro.graph.graph import Graph
from repro.graph.partition.api import partition_graph
from repro.graph.partition.book import PartitionBook
from repro.graph.partition.quality import balance
from repro.graph.datasets import GraphDataset, DatasetSpec
from repro.graph.partition.metis_like import metis_like_partition


def _tiny_case(n=30, seed=3, num_classes=3, num_feats=6):
    """A miniature dataset + 2-part book for gradient-level checks."""
    gen = np.random.default_rng(seed)
    src = gen.integers(0, n, 4 * n)
    dst = gen.integers(0, n, 4 * n)
    graph = Graph.from_edges(src, dst, n)
    features = gen.normal(size=(n, num_feats)).astype(np.float32)
    labels = gen.integers(0, num_classes, n)
    train_mask = np.zeros(n, dtype=bool)
    train_mask[: n // 2] = True
    spec = DatasetSpec(
        name="unit", paper_name="unit", num_nodes=n, avg_degree=4.0,
        num_features=num_feats, num_classes=num_classes, multilabel=False,
    )
    ds = GraphDataset(
        spec=spec, graph=graph, features=features, labels=labels,
        train_mask=train_mask, val_mask=~train_mask, test_mask=~train_mask,
    )
    book = PartitionBook(
        part_of=(np.arange(n) % 2).astype(np.int32), num_parts=2
    )
    return ds, book


def test_full_stack_weight_gradient_numerical():
    """dL/dW through the *distributed* pipeline matches finite differences.

    This exercises partitioning, halo exchange, both conv directions,
    LayerNorm/ReLU, the masked loss, halo-gradient routing and the
    allreduce — everything except quantization (exact exchange).
    """
    ds, book = _tiny_case()

    def loss_for(cluster):
        return cluster.train_epoch(ExactHaloExchange(), 0).loss

    base = Cluster(ds, book, model_kind="gcn", hidden_dim=4, num_layers=2,
                   dropout=0.0, seed=0)
    loss_for(base)  # populates gradients on every replica
    analytic = base.devices[0].model.layers[0].conv.linear.weight.grad.copy()

    eps = 1e-3
    w_shape = analytic.shape
    gen = np.random.default_rng(0)
    for _ in range(6):  # spot-check 6 random weight entries
        i, j = gen.integers(0, w_shape[0]), gen.integers(0, w_shape[1])
        plus = Cluster(ds, book, model_kind="gcn", hidden_dim=4, num_layers=2,
                       dropout=0.0, seed=0)
        for dev in plus.devices:  # perturb every replica identically
            dev.model.layers[0].conv.linear.weight.data[i, j] += eps
        minus = Cluster(ds, book, model_kind="gcn", hidden_dim=4, num_layers=2,
                        dropout=0.0, seed=0)
        for dev in minus.devices:
            dev.model.layers[0].conv.linear.weight.data[i, j] -= eps
        numeric = (loss_for(plus) - loss_for(minus)) / (2 * eps)
        assert abs(numeric - analytic[i, j]) < 5e-3 * max(1.0, abs(numeric)) + 1e-4


def test_8bit_quantization_barely_perturbs_gradients():
    ds, book = _tiny_case()
    exact = Cluster(ds, book, model_kind="gcn", hidden_dim=4, num_layers=2,
                    dropout=0.0, seed=0)
    exact.train_epoch(ExactHaloExchange(), 0)
    g_exact = exact.devices[0].model.grad_vector()

    quant = Cluster(ds, book, model_kind="gcn", hidden_dim=4, num_layers=2,
                    dropout=0.0, seed=0)
    quant.train_epoch(
        QuantizedHaloExchange(FixedBitProvider(8), np.random.default_rng(0)), 0
    )
    g_quant = quant.devices[0].model.grad_vector()
    rel = np.linalg.norm(g_exact - g_quant) / (np.linalg.norm(g_exact) + 1e-12)
    assert rel < 0.05


def test_gradient_noise_decreases_with_bits():
    """Theorem 3's premise observed end to end: more bits, less gradient
    deviation from the exact run."""
    ds, book = _tiny_case(n=60)
    exact = Cluster(ds, book, model_kind="gcn", hidden_dim=4, num_layers=2,
                    dropout=0.0, seed=0)
    exact.train_epoch(ExactHaloExchange(), 0)
    g_exact = exact.devices[0].model.grad_vector()

    def deviation(bits):
        devs = []
        for trial in range(8):
            c = Cluster(ds, book, model_kind="gcn", hidden_dim=4, num_layers=2,
                        dropout=0.0, seed=0)
            c.train_epoch(
                QuantizedHaloExchange(
                    FixedBitProvider(bits), np.random.default_rng(trial)
                ),
                0,
            )
            devs.append(
                np.linalg.norm(c.devices[0].model.grad_vector() - g_exact)
            )
        return float(np.mean(devs))

    d2, d4, d8 = deviation(2), deviation(4), deviation(8)
    assert d2 > d4 > d8


@pytest.mark.parametrize("num_layers", [1, 2, 4])
def test_any_depth_trains(num_layers):
    ds, book = _tiny_case()
    cfg = RunConfig(epochs=2, hidden_dim=8, num_layers=num_layers,
                    eval_every=1, dropout=0.0)
    result = train("adaqp", ds, book, "2M-1D", cfg)
    assert np.isfinite(result.final_val)
    assert len(result.epoch_times) == 2


def test_seed_stability_of_accuracy(tiny_single_label_dataset):
    """Accuracy varies little across seeds (the paper reports std <= 0.4)."""
    ds = tiny_single_label_dataset
    finals = []
    for seed in range(3):
        book = partition_graph(ds.graph, 4, method="metis", seed=0)
        cfg = RunConfig(epochs=30, hidden_dim=16, eval_every=30, dropout=0.3,
                        seed=seed)
        finals.append(train("adaqp", ds, book, "2M-2D", cfg).final_val)
    assert float(np.std(finals)) < 0.035


@given(st.integers(min_value=0, max_value=10_000), st.integers(2, 5))
@settings(max_examples=15, deadline=None)
def test_property_metis_balanced_on_random_graphs(seed, k):
    gen = np.random.default_rng(seed)
    n = int(gen.integers(3 * k, 120))
    src = gen.integers(0, n, 4 * n)
    dst = gen.integers(0, n, 4 * n)
    graph = Graph.from_edges(src, dst, n)
    book = metis_like_partition(graph, k, seed=seed)
    assert book.num_parts == k
    assert (book.sizes() > 0).all()
    assert balance(book) <= 2.0  # loose bound for tiny adversarial graphs
