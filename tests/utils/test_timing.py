"""Stopwatch accumulation semantics."""

from repro.utils.timing import Stopwatch


def test_lap_accumulates():
    sw = Stopwatch()
    with sw.lap("a"):
        pass
    with sw.lap("a"):
        pass
    assert sw.counts["a"] == 2
    assert sw.total("a") >= 0.0


def test_add_and_mean():
    sw = Stopwatch()
    sw.add("x", 1.0)
    sw.add("x", 3.0)
    assert sw.total("x") == 4.0
    assert sw.mean("x") == 2.0


def test_missing_name_is_zero():
    sw = Stopwatch()
    assert sw.total("nope") == 0.0
    assert sw.mean("nope") == 0.0


def test_reset():
    sw = Stopwatch()
    sw.add("x", 1.0)
    sw.reset()
    assert sw.total("x") == 0.0
    assert sw.counts == {}


def test_lap_records_on_exception():
    sw = Stopwatch()
    try:
        with sw.lap("err"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert sw.counts["err"] == 1
