"""Boundary validators raise precise errors."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array,
    check_in_set,
    check_positive,
    check_probability,
)


def test_check_array_accepts_valid():
    x = np.zeros((2, 3), dtype=np.float32)
    assert check_array(x, name="x", ndim=2, dtype_kind="f") is x


def test_check_array_rejects_non_array():
    with pytest.raises(TypeError, match="x must be a numpy array"):
        check_array([1, 2], name="x")


def test_check_array_rejects_wrong_ndim():
    with pytest.raises(ValueError, match="2-dimensional"):
        check_array(np.zeros(3), name="x", ndim=2)


def test_check_array_rejects_wrong_dtype():
    with pytest.raises(TypeError, match="dtype kind"):
        check_array(np.zeros(3, dtype=np.float32), name="x", dtype_kind="i")


def test_check_array_rejects_empty_when_disallowed():
    with pytest.raises(ValueError, match="empty"):
        check_array(np.zeros(0), name="x", allow_empty=False)


def test_check_positive():
    assert check_positive(2.5, name="v") == 2.5
    with pytest.raises(ValueError):
        check_positive(0, name="v")
    assert check_positive(0, name="v", strict=False) == 0.0
    with pytest.raises(ValueError):
        check_positive(-1, name="v", strict=False)


def test_check_probability():
    assert check_probability(0.0, name="p") == 0.0
    assert check_probability(1.0, name="p") == 1.0
    with pytest.raises(ValueError):
        check_probability(1.5, name="p")
    with pytest.raises(ValueError):
        check_probability(-0.1, name="p")


def test_check_in_set():
    assert check_in_set("a", {"a", "b"}, name="k") == "a"
    with pytest.raises(ValueError, match="must be one of"):
        check_in_set("c", {"a", "b"}, name="k")
