"""RngPool: reproducibility, stream independence, forking."""

import numpy as np

from repro.utils.seed import RngPool, rng_from_seed


def test_rng_from_seed_reproducible():
    a = rng_from_seed(42).random(8)
    b = rng_from_seed(42).random(8)
    assert np.array_equal(a, b)


def test_rng_from_seed_none_is_nondeterministic():
    a = rng_from_seed(None).random(8)
    b = rng_from_seed(None).random(8)
    assert not np.array_equal(a, b)


def test_pool_same_key_same_stream():
    a = RngPool(0).get("x").integers(0, 1000, 16)
    b = RngPool(0).get("x").integers(0, 1000, 16)
    assert np.array_equal(a, b)


def test_pool_different_keys_differ():
    pool = RngPool(0)
    a = pool.get("alpha").integers(0, 1000, 32)
    b = pool.get("beta").integers(0, 1000, 32)
    assert not np.array_equal(a, b)


def test_pool_different_seeds_differ():
    a = RngPool(0).get("x").integers(0, 1000, 32)
    b = RngPool(1).get("x").integers(0, 1000, 32)
    assert not np.array_equal(a, b)


def test_pool_request_order_irrelevant():
    p1 = RngPool(5)
    _ = p1.get("first").random(4)
    late = p1.get("second").random(4)
    p2 = RngPool(5)
    early = p2.get("second").random(4)
    assert np.array_equal(late, early)


def test_pool_cache_returns_same_generator():
    pool = RngPool(0)
    g1 = pool.get("k")
    g2 = pool.get("k")
    assert g1 is g2  # a stream advances; it is not reset per call


def test_device_helper_distinct_ranks():
    pool = RngPool(3)
    a = pool.device(0, "dropout").random(16)
    b = pool.device(1, "dropout").random(16)
    assert not np.array_equal(a, b)


def test_fork_independence_and_determinism():
    parent = RngPool(9)
    child1 = parent.fork("sub")
    child2 = RngPool(9).fork("sub")
    assert np.array_equal(child1.get("x").random(8), child2.get("x").random(8))
    other = parent.fork("other")
    assert not np.array_equal(
        RngPool(9).fork("sub").get("x").random(8), other.get("x").random(8)
    )
