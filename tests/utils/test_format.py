"""Formatting helpers: byte/second units and ASCII tables."""

import pytest

from repro.utils.format import format_bytes, format_seconds, render_table


@pytest.mark.parametrize(
    "value,expected",
    [
        (0, "0 B"),
        (512, "512 B"),
        (2048, "2.00 KiB"),
        (5 * 1024**2, "5.00 MiB"),
        (3 * 1024**3, "3.00 GiB"),
        (2 * 1024**4, "2.00 TiB"),
    ],
)
def test_format_bytes(value, expected):
    assert format_bytes(value) == expected


@pytest.mark.parametrize(
    "value,expected",
    [
        (5e-7, "0.5 us"),
        (4.2e-4, "420.0 us"),
        (0.012, "12.0 ms"),
        (1.5, "1.50 s"),
        (240.0, "4.0 min"),
    ],
)
def test_format_seconds(value, expected):
    assert format_seconds(value) == expected


def test_format_seconds_negative():
    assert format_seconds(-0.5) == "-500.0 ms"


def test_render_table_alignment():
    out = render_table(["a", "bbbb"], [["x", 1], ["yyyy", 22]])
    lines = out.splitlines()
    assert len(lines) == 4
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # all lines equal width


def test_render_table_title():
    out = render_table(["c"], [["v"]], title="T")
    assert out.splitlines()[0] == "T"


def test_render_table_ragged_row_rejected():
    with pytest.raises(ValueError, match="cells"):
        render_table(["a", "b"], [["only-one"]])


def test_render_table_empty_rows():
    out = render_table(["a"], [])
    assert "a" in out
