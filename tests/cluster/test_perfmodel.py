"""Device performance model."""

import pytest

from repro.cluster.perfmodel import PerfModel


def test_flop_formulas():
    assert PerfModel.gemm_flops(10, 20, 30) == 2 * 10 * 20 * 30
    assert PerfModel.spmm_flops(100, 8) == 2 * 100 * 8


def test_times_positive_and_monotone():
    pm = PerfModel()
    assert pm.gemm_time(1e6) > pm.gemm_time(1e3) > 0
    assert pm.spmm_time(1e6) > pm.spmm_time(1e3)
    assert pm.quant_time(1e6) > pm.quant_time(1e3)


def test_zero_work_zero_quant_time():
    pm = PerfModel()
    assert pm.quant_time(0) == 0.0


def test_launch_overhead_included():
    pm = PerfModel(kernel_launch_s=1.0)
    assert pm.gemm_time(1) > 1.0


def test_spmm_slower_than_gemm_per_flop():
    pm = PerfModel()
    flops = 1e9
    assert pm.spmm_time(flops) > pm.gemm_time(flops)


def test_compute_time_is_sum_of_stages():
    pm = PerfModel()
    assert pm.compute_time(1e6, 1e6) == pytest.approx(
        pm.spmm_time(1e6) + pm.gemm_time(1e6)
    )


def test_invalid_rates_rejected():
    with pytest.raises(ValueError):
        PerfModel(gemm_flops_per_s=0)
    with pytest.raises(ValueError):
        PerfModel(kernel_launch_s=-1)
