"""End-to-end equivalence: the fused compute engine is the legacy path, faster.

The engine's contract (ISSUE 2): under the same seed,
:class:`FusedClusterCompute` must produce *identical* losses, model
gradients, accuracy curves and wire bytes to the legacy per-device layer
loop — across model kinds, partition counts and exchange policies.  The
fused path changes execution shape (block-diagonal aggregation, stacked
GEMMs, in-place halo writes), never values.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.cluster.compute import FusedClusterCompute, build_block_diagonal
from repro.cluster.exchange import (
    ExactHaloExchange,
    FixedBitProvider,
    FusedQuantizedHaloExchange,
)
from repro.core.config import RunConfig
from repro.core.trainer import train
from repro.gnn.coefficients import build_aggregation
from repro.gnn.conv import stack_conv_inputs
from repro.graph.graph import Graph
from repro.graph.partition.api import partition_graph
from repro.graph.partition.book import PartitionBook, build_local_partitions
from repro.nn.losses import softmax_cross_entropy


def _book(dataset, parts):
    if parts == 1:
        return PartitionBook(
            part_of=np.zeros(dataset.num_nodes, dtype=np.int32), num_parts=1
        )
    return partition_graph(dataset.graph, parts, method="metis", seed=0)


def _make_exchange(name):
    if name == "exact":
        return ExactHaloExchange()
    if name == "stale":
        from repro.baselines.pipegcn import StaleHaloExchange

        return StaleHaloExchange()
    if name == "broadcast":
        from repro.baselines.sancus import BroadcastSkipExchange

        return BroadcastSkipExchange(2)
    return FusedQuantizedHaloExchange(FixedBitProvider(4), np.random.default_rng(123))


def _run_epochs(dataset, book, *, model_kind, fused, exchange_name, epochs=3):
    cluster = Cluster(
        dataset,
        book,
        model_kind=model_kind,
        hidden_dim=8,
        num_layers=3,
        dropout=0.5,
        seed=7,
        fused_compute=fused,
    )
    exchange = _make_exchange(exchange_name)
    losses, grads, wire = [], [], 0
    for epoch in range(epochs):
        record = cluster.train_epoch(exchange, epoch)
        losses.append(record.loss)
        grads.append(cluster.devices[0].model.grad_vector().copy())
        wire += record.total_wire_bytes()
    metrics = cluster.evaluate()
    return losses, grads, wire, metrics, record.grad_allreduce_bytes


@pytest.mark.parametrize("model_kind", ["gcn", "sage"])
@pytest.mark.parametrize("parts", [1, 2, 4])
@pytest.mark.parametrize("exchange_name", ["exact", "quantized"])
def test_losses_gradients_metrics_identical(
    tiny_dataset, model_kind, parts, exchange_name
):
    book = _book(tiny_dataset, parts)
    fused = _run_epochs(
        tiny_dataset, book, model_kind=model_kind, fused=True, exchange_name=exchange_name
    )
    legacy = _run_epochs(
        tiny_dataset, book, model_kind=model_kind, fused=False, exchange_name=exchange_name
    )
    assert fused[0] == legacy[0], "losses diverged"
    for gf, gl in zip(fused[1], legacy[1]):
        assert np.array_equal(gf, gl), "reduced gradients diverged"
    assert fused[2] == legacy[2], "wire bytes diverged"
    assert fused[3] == legacy[3], "eval metrics diverged"
    assert fused[4] == legacy[4], "allreduce byte accounting diverged"


@pytest.mark.parametrize("exchange_name", ["stale", "broadcast"])
def test_baseline_exchanges_identical(tiny_dataset, exchange_name):
    """The stale/broadcast baselines cache posted payloads across epochs,
    so they are the exchanges most exposed to the engine's buffer reuse —
    their trajectories must match the legacy path exactly too."""
    book = _book(tiny_dataset, 4)
    fused = _run_epochs(
        tiny_dataset, book, model_kind="gcn", fused=True,
        exchange_name=exchange_name, epochs=4,
    )
    legacy = _run_epochs(
        tiny_dataset, book, model_kind="gcn", fused=False,
        exchange_name=exchange_name, epochs=4,
    )
    assert fused[0] == legacy[0]
    for gf, gl in zip(fused[1], legacy[1]):
        assert np.array_equal(gf, gl)
    assert fused[2] == legacy[2]
    assert fused[3] == legacy[3]


def test_accuracy_curves_identical_via_trainer(tiny_dataset, tiny_book):
    cfg = RunConfig(epochs=8, hidden_dim=8, eval_every=2, reassign_period=4)
    fused = train("adaqp-fixed", tiny_dataset, tiny_book, "2M-2D", cfg)
    legacy = train(
        "adaqp-fixed",
        tiny_dataset,
        tiny_book,
        "2M-2D",
        cfg.with_overrides(fused_compute=False),
    )
    assert fused.curve_loss == legacy.curve_loss
    assert fused.curve_val == legacy.curve_val
    assert fused.curve_test == legacy.curve_test
    assert fused.wire_bytes_total == legacy.wire_bytes_total
    assert fused.epoch_times == legacy.epoch_times  # identical records/schedule


def test_replicas_stay_identical_under_fused_engine(tiny_dataset):
    from repro.nn.optim import Adam

    book = _book(tiny_dataset, 3)
    cluster = Cluster(
        tiny_dataset, book, hidden_dim=8, num_layers=2, dropout=0.5, seed=0,
        fused_compute=True,
    )
    opts = [Adam(dev.model.parameters(), lr=0.01) for dev in cluster.devices]
    exchange = ExactHaloExchange()
    for epoch in range(3):
        cluster.train_epoch(exchange, epoch)
        for opt in opts:
            opt.step()
    s0 = cluster.devices[0].model.state_dict()
    for dev in cluster.devices[1:]:
        s = dev.model.state_dict()
        for key in s0:
            assert np.array_equal(s0[key], s[key])


def test_fused_compute_is_default(tiny_dataset, tiny_book):
    cluster = Cluster(tiny_dataset, tiny_book, hidden_dim=8, seed=0)
    assert cluster.fused_compute
    assert RunConfig().fused_compute
    legacy = Cluster(
        tiny_dataset, tiny_book, hidden_dim=8, seed=0, fused_compute=False
    )
    assert not legacy.fused_compute
    # The engine is built lazily and only on the fused path.
    cluster.train_epoch(ExactHaloExchange(), 0)
    legacy.train_epoch(ExactHaloExchange(), 0)
    assert cluster._engine is not None
    assert legacy._engine is None


def test_engine_buffers_do_not_leak_between_epochs(tiny_dataset):
    """Eval passes share the engine's stacked buffers with training; the
    reuse must be invisible — training trajectories with and without
    interleaved evals are identical."""
    book = _book(tiny_dataset, 4)

    def losses(with_eval):
        cluster = Cluster(
            tiny_dataset, book, hidden_dim=8, num_layers=2, dropout=0.0, seed=0,
            fused_compute=True,
        )
        exchange = ExactHaloExchange()
        out = []
        for epoch in range(3):
            out.append(cluster.train_epoch(exchange, epoch).loss)
            if with_eval:
                cluster.evaluate()
        return out

    assert losses(True) == losses(False)


# ----------------------------------------------------------------------
# Block-diagonal operator property (hypothesis)
# ----------------------------------------------------------------------
class _DeviceStub:
    def __init__(self, part, agg):
        self.part = part
        self.agg = agg


@st.composite
def _ragged_partition(draw):
    n = draw(st.integers(min_value=4, max_value=28))
    parts = draw(st.integers(min_value=1, max_value=min(4, n)))
    n_edges = draw(st.integers(min_value=1, max_value=80))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=n_edges, max_size=n_edges)
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=n_edges, max_size=n_edges)
    )
    # Every partition owns at least one node; remainder assigned at random.
    assignment = list(range(parts)) + draw(
        st.lists(st.integers(0, parts - 1), min_size=n - parts, max_size=n - parts)
    )
    kind = draw(st.sampled_from(["gcn", "sage", "sum"]))
    return n, parts, np.asarray(src), np.asarray(dst), np.asarray(assignment), kind


@given(_ragged_partition())
@settings(max_examples=40, deadline=None)
def test_block_diagonal_equals_per_device_aggregation(case):
    n, parts, src, dst, assignment, kind = case
    graph = Graph.from_edges(src, dst, n)
    book = PartitionBook(part_of=assignment.astype(np.int32), num_parts=parts)
    local = build_local_partitions(graph, book)
    degrees = graph.degrees.astype(np.float64)
    devices = [
        _DeviceStub(part, build_aggregation(part, degrees, kind)) for part in local
    ]
    fused = build_block_diagonal(devices)

    gen = np.random.default_rng(0)
    dim = 5
    n_own = [d.part.n_owned for d in devices]
    n_halo = [d.part.n_halo for d in devices]
    x_own = [gen.normal(size=(m, dim)).astype(np.float32) for m in n_own]
    x_halo = [gen.normal(size=(h, dim)).astype(np.float32) for h in n_halo]
    x_global = np.vstack(x_own + x_halo)
    z_global = np.asarray(fused @ x_global)

    offset = 0
    for k, dev in enumerate(devices):
        x_full = np.vstack([x_own[k], x_halo[k]]) if n_halo[k] else x_own[k]
        z_dev = dev.agg.aggregate(x_full)
        assert np.array_equal(z_global[offset : offset + n_own[k]], z_dev)
        offset += n_own[k]

    # And the cached transpose routes gradients identically per device.
    fused_t = fused.T.tocsr()
    fused_t.sort_indices()
    d_z = [gen.normal(size=(m, dim)).astype(np.float32) for m in n_own]
    d_global = np.asarray(fused_t @ np.vstack(d_z))
    own_total = sum(n_own)
    own_off = np.concatenate([[0], np.cumsum(n_own)])
    halo_off = np.concatenate([[0], np.cumsum(n_halo)])
    for k, dev in enumerate(devices):
        d_dev = dev.agg.aggregate_transpose(d_z[k])
        assert np.array_equal(
            d_global[own_off[k] : own_off[k + 1]], d_dev[: n_own[k]]
        )
        assert np.array_equal(
            d_global[own_total + halo_off[k] : own_total + halo_off[k + 1]],
            d_dev[n_own[k] :],
        )


# ----------------------------------------------------------------------
# Satellite regressions
# ----------------------------------------------------------------------
def test_cached_transpose_matches_csc_path(tiny_parts, tiny_dataset):
    degrees = tiny_dataset.graph.degrees.astype(np.float64)
    for part in tiny_parts:
        agg = build_aggregation(part, degrees, "gcn")
        d_z = np.random.default_rng(0).normal(
            size=(agg.n_owned, 6)
        ).astype(np.float32)
        via_cache = agg.aggregate_transpose(d_z)
        via_csc = np.asarray(agg.matrix.T @ d_z)
        assert np.array_equal(via_cache, via_csc)
        assert agg.matrix_t is agg.matrix_t  # built once, cached


def test_stack_conv_inputs_paths():
    base = np.arange(24, dtype=np.float32).reshape(8, 3)
    own = base[:5]

    # Empty halo: contiguous input passes through untouched.
    empty = np.zeros((0, 3), dtype=np.float32)
    assert stack_conv_inputs(own, empty) is own
    # Non-contiguous input is made contiguous exactly once.
    strided = base[::2]
    fixed = stack_conv_inputs(strided, np.zeros((0, 3), dtype=np.float32))
    assert fixed.flags.c_contiguous
    assert np.array_equal(fixed, strided)

    # Non-empty halo vstacks (one copy, correct values).
    stacked = stack_conv_inputs(base[5:], base[:5])
    assert not np.shares_memory(stacked, base)
    assert np.array_equal(stacked, np.vstack([base[5:], base[:5]]))


def test_aggregation_stays_float32(tiny_parts, tiny_dataset):
    degrees = tiny_dataset.graph.degrees.astype(np.float64)
    for kind in ("gcn", "sage", "sum"):
        agg = build_aggregation(tiny_parts[0], degrees, kind)
        assert agg.matrix.dtype == np.float32
        assert agg.matrix_t.dtype == np.float32
        x = np.ones((agg.n_owned + agg.n_halo, 4), dtype=np.float32)
        assert agg.aggregate(x).dtype == np.float32
        d = np.ones((agg.n_owned, 4), dtype=np.float32)
        assert agg.aggregate_transpose(d).dtype == np.float32


def test_loss_out_buffer_matches_fresh_allocation():
    gen = np.random.default_rng(0)
    logits = gen.normal(size=(10, 4)).astype(np.float32)
    labels = gen.integers(0, 4, 10)
    mask = gen.random(10) < 0.6
    loss_a, grad_a = softmax_cross_entropy(logits, labels, mask, normalizer=12.0)
    buf = np.full_like(logits, 999.0)
    loss_b, grad_b = softmax_cross_entropy(
        logits, labels, mask, normalizer=12.0, out=buf
    )
    assert loss_a == loss_b
    assert grad_b is buf
    assert np.array_equal(grad_a, grad_b)


def test_engine_exposes_global_scatter(tiny_dataset):
    book = _book(tiny_dataset, 2)
    cluster = Cluster(
        tiny_dataset, book, hidden_dim=8, num_layers=2, dropout=0.0, seed=0,
        fused_compute=True,
    )
    engine = cluster._compute_engine()
    assert isinstance(engine, FusedClusterCompute)
    logits_fused = cluster.full_logits()
    legacy = Cluster(
        tiny_dataset, book, hidden_dim=8, num_layers=2, dropout=0.0, seed=0,
        fused_compute=False,
    )
    assert np.array_equal(logits_fused, legacy.full_logits())
