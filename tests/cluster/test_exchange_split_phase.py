"""The split-phase exchange API: post_step → in-flight → finalize_step.

Every policy must satisfy the same contract: the two halves compose to
exactly the monolithic call (values *and* wire bytes), payloads are
snapshotted at post time so sources may be mutated while in flight, and a
handle finalizes exactly once.
"""

import numpy as np
import pytest

from repro.baselines.pipegcn import StaleHaloExchange
from repro.baselines.sancus import BroadcastSkipExchange
from repro.cluster.exchange import (
    ExactHaloExchange,
    FixedBitProvider,
    FusedQuantizedHaloExchange,
    HaloExchange,
    QuantizedHaloExchange,
)
from repro.cluster.runtime import DeviceRuntime
from repro.comm.transport import SyncTransport as Transport
from repro.gnn.coefficients import build_aggregation
from repro.gnn.model import DistGNN
from repro.utils.seed import RngPool


@pytest.fixture(scope="module")
def devices(tiny_dataset, tiny_parts):
    degrees = tiny_dataset.graph.degrees.astype(np.float64)
    pool = RngPool(0).fork("split-phase")
    out = []
    for part in tiny_parts:
        agg = build_aggregation(part, degrees, "gcn")
        model = DistGNN(
            "gcn",
            [tiny_dataset.num_features, 8, tiny_dataset.num_classes],
            agg,
            dropout=0.0,
            weight_rng=pool.fork("shared").get("init"),
            dropout_rng=pool.device(part.part_id, "dropout"),
        )
        owned = part.owned_global
        out.append(
            DeviceRuntime(
                rank=part.part_id,
                part=part,
                agg=agg,
                model=model,
                features=tiny_dataset.features[owned],
                labels=tiny_dataset.labels[owned],
                train_mask=tiny_dataset.train_mask[owned],
                val_mask=tiny_dataset.val_mask[owned],
                test_mask=tiny_dataset.test_mask[owned],
            )
        )
    return out


def _values(devices, dim, seed=0, halo=False):
    gen = np.random.default_rng(seed)
    return [
        gen.normal(
            size=(d.part.n_halo if halo else d.part.n_owned, dim)
        ).astype(np.float32)
        for d in devices
    ]


EXCHANGES = {
    "generic": lambda: _GenericExchange(),
    "exact": ExactHaloExchange,
    "quantized": lambda: QuantizedHaloExchange(
        FixedBitProvider(4), np.random.default_rng(3)
    ),
    "fused-quantized": lambda: FusedQuantizedHaloExchange(
        FixedBitProvider(4), np.random.default_rng(3)
    ),
    "stale": StaleHaloExchange,
    "broadcast": lambda: BroadcastSkipExchange(2),
}


class _GenericExchange(HaloExchange):
    """The base-class per-pair path with float32 passthrough payloads."""

    def _post(self, transport, layer, phase, src, dst, tag, rows):
        rows = np.ascontiguousarray(rows, dtype=np.float32)
        transport.post(src, dst, tag, rows, rows.nbytes)

    def _decode(self, payload):
        return payload


@pytest.mark.parametrize("name", sorted(EXCHANGES))
def test_split_equals_monolithic_forward(devices, name):
    dim = 6
    h = _values(devices, dim)
    mono = EXCHANGES[name]()
    split = EXCHANGES[name]()
    t_mono, t_split = Transport(len(devices)), Transport(len(devices))

    expected = mono.exchange_embeddings(0, devices, t_mono, h)
    step = split.post_step(0, "fwd", devices, t_split, h)
    # Mutating the source after post must not change what was shipped.
    for arr in h:
        arr += 100.0
    got = split.finalize_step(step)
    for e, g in zip(expected, got):
        assert np.array_equal(e, g)
    for arr in h:
        arr -= 100.0
    assert t_mono.total_bytes() == t_split.total_bytes()


@pytest.mark.parametrize("name", sorted(EXCHANGES))
def test_split_equals_monolithic_backward(devices, name):
    dim = 6
    d_halo = _values(devices, dim, seed=1, halo=True)
    base = _values(devices, dim, seed=2)
    mono = EXCHANGES[name]()
    split = EXCHANGES[name]()
    t_mono, t_split = Transport(len(devices)), Transport(len(devices))

    d_own_mono = [v.copy() for v in base]
    mono.exchange_gradients(0, devices, t_mono, d_halo, d_own_mono)
    d_own_split = [v.copy() for v in base]
    step = split.post_step(0, "bwd", devices, t_split, d_halo)
    for arr in d_halo:
        arr += 100.0
    split.finalize_step(step, out=d_own_split)
    for arr in d_halo:
        arr -= 100.0
    for e, g in zip(d_own_mono, d_own_split):
        assert np.array_equal(e, g)
    assert t_mono.total_bytes() == t_split.total_bytes()


def test_forward_finalize_fills_out_buffers(devices):
    dim = 4
    h = _values(devices, dim)
    exchange = ExactHaloExchange()
    transport = Transport(len(devices))
    out = [
        np.full((d.part.n_halo, dim), 7.0, dtype=np.float32) for d in devices
    ]
    step = exchange.post_step(0, "fwd", devices, transport, h)
    got = exchange.finalize_step(step, out=out)
    for buf, res in zip(out, got):
        assert res is buf


def test_handle_finalizes_exactly_once(devices):
    h = _values(devices, 4)
    exchange = ExactHaloExchange()
    transport = Transport(len(devices))
    step = exchange.post_step(0, "fwd", devices, transport, h)
    exchange.finalize_step(step)
    with pytest.raises(RuntimeError, match="finalized twice"):
        exchange.finalize_step(step)


def test_backward_finalize_requires_out(devices):
    d_halo = _values(devices, 4, halo=True)
    exchange = ExactHaloExchange()
    transport = Transport(len(devices))
    step = exchange.post_step(0, "bwd", devices, transport, d_halo)
    with pytest.raises(ValueError, match="out="):
        exchange.finalize_step(step)


def test_post_step_rejects_unknown_phase(devices):
    exchange = ExactHaloExchange()
    transport = Transport(len(devices))
    with pytest.raises(ValueError):
        exchange.post_step(0, "sideways", devices, transport, _values(devices, 4))


def test_in_flight_bytes_visible_between_halves(devices):
    h = _values(devices, 4)
    exchange = ExactHaloExchange()
    transport = Transport(len(devices))
    assert transport.pending_bytes("fwd/L0") == 0
    step = exchange.post_step(0, "fwd", devices, transport, h)
    pending = transport.pending_bytes(step.tag)
    assert pending == transport.bytes_matrix(step.tag).sum() > 0
    exchange.finalize_step(step)
    assert transport.pending_bytes(step.tag) == 0
