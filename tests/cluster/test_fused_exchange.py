"""End-to-end equivalence: the fused engine is the legacy path, faster.

The engine's contract (ISSUE 1): under the same seed,
:class:`FusedQuantizedHaloExchange` must produce *identical* wire bytes,
identical dequantized tensors and identical training trajectories to
:class:`QuantizedHaloExchange` — the fused path changes execution shape,
never values.
"""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.exchange import (
    FixedBitProvider,
    FusedQuantizedHaloExchange,
    QuantizedHaloExchange,
)
from repro.core.config import RunConfig
from repro.core.trainer import build_system, train


def _train_pair(system, tiny_dataset, tiny_book, **overrides):
    cfg = RunConfig(
        epochs=10,
        hidden_dim=8,
        eval_every=2,
        reassign_period=4,
        uniform_period=4,
        **overrides,
    )
    fused = train(system, tiny_dataset, tiny_book, "2M-2D", cfg)
    unfused = train(
        system,
        tiny_dataset,
        tiny_book,
        "2M-2D",
        cfg.with_overrides(fused_exchange=False),
    )
    return fused, unfused


@pytest.mark.parametrize("system", ["adaqp", "adaqp-fixed", "adaqp-uniform"])
def test_train_result_identical(system, tiny_dataset, tiny_book):
    fused, unfused = _train_pair(system, tiny_dataset, tiny_book)
    assert fused.curve_loss == unfused.curve_loss
    assert fused.curve_val == unfused.curve_val
    assert fused.curve_test == unfused.curve_test
    assert fused.wire_bytes_total == unfused.wire_bytes_total
    assert fused.bit_histogram == unfused.bit_histogram


def test_adaptive_assignments_identical(tiny_dataset, tiny_book):
    """The tracer hook sees identical inputs: same MILP, same assignment."""
    fused, unfused = _train_pair("adaqp", tiny_dataset, tiny_book, solver="greedy")
    assert fused.bit_histogram == unfused.bit_histogram
    assert fused.epoch_times == unfused.epoch_times  # same simulated schedule


def test_exchange_tensors_identical_per_epoch(tiny_dataset, tiny_book):
    """Dequantized halos and gradients match exactly, epoch by epoch."""

    def run(exchange_cls):
        cluster = Cluster(
            tiny_dataset, tiny_book, hidden_dim=8, num_layers=2, dropout=0.0, seed=0
        )
        exchange = exchange_cls(FixedBitProvider(4), np.random.default_rng(123))
        records = [cluster.train_epoch(exchange, epoch) for epoch in range(3)]
        h = [dev.features for dev in cluster.devices]
        halos = exchange.exchange_embeddings(0, cluster.devices, cluster.transport, h)
        # Drain so the transport stays consistent for reuse.
        losses = [r.loss for r in records]
        bytes_ = [int(r.total_wire_bytes()) for r in records]
        return losses, bytes_, halos

    losses_u, bytes_u, halos_u = run(QuantizedHaloExchange)
    losses_f, bytes_f, halos_f = run(FusedQuantizedHaloExchange)
    assert losses_u == losses_f
    assert bytes_u == bytes_f
    for hu, hf in zip(halos_u, halos_f):
        assert np.array_equal(hu, hf)


def test_fused_is_default_for_adaqp_systems(tiny_dataset, tiny_book):
    from repro.comm.costmodel import LinkCostModel
    from repro.comm.topology import parse_topology

    cluster = Cluster(tiny_dataset, tiny_book, hidden_dim=8, seed=0)
    cm = LinkCostModel.for_topology(parse_topology("2M-2D"))
    for system in ("adaqp", "adaqp-fixed", "adaqp-uniform", "adaqp-no-overlap"):
        setup = build_system(system, cluster, cm, RunConfig())
        assert isinstance(setup.exchange, FusedQuantizedHaloExchange), system
        legacy = build_system(
            system, cluster, cm, RunConfig(fused_exchange=False)
        )
        assert isinstance(legacy.exchange, QuantizedHaloExchange)
        assert not isinstance(legacy.exchange, FusedQuantizedHaloExchange)


def test_halo_buffer_reuse_does_not_leak_between_epochs(tiny_dataset, tiny_book):
    """Reused halo buffers must be indistinguishable from fresh ones."""
    cluster = Cluster(
        tiny_dataset, tiny_book, hidden_dim=8, num_layers=2, dropout=0.0, seed=0
    )
    exchange = FusedQuantizedHaloExchange(
        FixedBitProvider(2), np.random.default_rng(0)
    )
    first = cluster.train_epoch(exchange, 0).loss

    cluster2 = Cluster(
        tiny_dataset, tiny_book, hidden_dim=8, num_layers=2, dropout=0.0, seed=0
    )
    exchange2 = FusedQuantizedHaloExchange(
        FixedBitProvider(2), np.random.default_rng(0)
    )
    # Same seed, but exchange2's buffers are cold: epoch 0 must agree.
    assert cluster2.train_epoch(exchange2, 0).loss == first
