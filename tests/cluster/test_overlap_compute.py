"""End-to-end equivalence: the split-phase pipelined executor is the fused
engine with the paper's overlap executed for real.

The executor's contract (ISSUE 3): under the same seed, running each layer
step as post → central sub-step → finalize → marginal sub-step must be
**bit-identical** to the PR-2 fused path — same losses, reduced gradients,
wire bytes and accuracy — across model kinds, partition counts and every
exchange policy, because the central/marginal split is a row permutation
of the same math.  On top of the numerics, each overlapped epoch must emit
a measured per-stage timeline whose transport-recorded interleave shows
the halo traffic really was in flight during the central windows.
"""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.compute import restrict_rows
from repro.comm.transport import SyncTransport as Transport
from repro.cluster.exchange import (
    ExactHaloExchange,
    FixedBitProvider,
    FusedQuantizedHaloExchange,
)
from repro.core.config import RunConfig
from repro.core.trainer import OVERLAP_SYSTEMS, train
from repro.graph.partition.api import partition_graph
from repro.graph.partition.book import PartitionBook


def _book(dataset, parts):
    if parts == 1:
        return PartitionBook(
            part_of=np.zeros(dataset.num_nodes, dtype=np.int32), num_parts=1
        )
    return partition_graph(dataset.graph, parts, method="metis", seed=0)


def _make_exchange(name, rng_mode="stream"):
    if name == "exact":
        return ExactHaloExchange()
    if name == "stale":
        from repro.baselines.pipegcn import StaleHaloExchange

        return StaleHaloExchange()
    if name == "broadcast":
        from repro.baselines.sancus import BroadcastSkipExchange

        return BroadcastSkipExchange(2)
    from repro.quant.stochastic import KeyedRounding

    rng = KeyedRounding(123) if rng_mode == "keyed" else np.random.default_rng(123)
    return FusedQuantizedHaloExchange(FixedBitProvider(4), rng)


def _run_epochs(
    dataset, book, *, model_kind, overlap, exchange_name, epochs=3,
    transport="sync", pipeline_depth=2, timeline_keep=None,
    rng_mode="stream", transport_cls=None,
):
    cluster = Cluster(
        dataset,
        book,
        model_kind=model_kind,
        hidden_dim=8,
        num_layers=3,
        dropout=0.5,
        seed=7,
        fused_compute=True,
        overlap=overlap,
        transport=transport,
        pipeline_depth=pipeline_depth,
        timeline_keep=timeline_keep,
    )
    if transport_cls is not None:
        cluster.transport = transport_cls(cluster.num_devices)
    exchange = _make_exchange(exchange_name, rng_mode)
    losses, grads, wire = [], [], 0
    record = None
    for epoch in range(epochs):
        record = cluster.train_epoch(exchange, epoch)
        losses.append(record.loss)
        grads.append(cluster.devices[0].model.grad_vector().copy())
        wire += record.total_wire_bytes()
    metrics = cluster.evaluate()
    cluster.close()
    return losses, grads, wire, metrics, record


@pytest.mark.parametrize("model_kind", ["gcn", "sage"])
@pytest.mark.parametrize("parts", [1, 2, 4])
@pytest.mark.parametrize(
    "exchange_name", ["exact", "quantized", "stale", "broadcast"]
)
def test_overlap_bitwise_identical_to_fused(
    tiny_dataset, model_kind, parts, exchange_name
):
    book = _book(tiny_dataset, parts)
    pipe = _run_epochs(
        tiny_dataset, book, model_kind=model_kind, overlap=True,
        exchange_name=exchange_name,
    )
    fused = _run_epochs(
        tiny_dataset, book, model_kind=model_kind, overlap=False,
        exchange_name=exchange_name,
    )
    assert pipe[0] == fused[0], "losses diverged"
    for gp, gf in zip(pipe[1], fused[1]):
        assert np.array_equal(gp, gf), "reduced gradients diverged"
    assert pipe[2] == fused[2], "wire bytes diverged"
    assert pipe[3] == fused[3], "eval metrics diverged"


@pytest.mark.parametrize("model_kind", ["gcn", "sage"])
@pytest.mark.parametrize("parts", [1, 2, 4])
@pytest.mark.parametrize(
    "exchange_name", ["exact", "quantized", "stale", "broadcast"]
)
def test_async_transport_bitwise_identical_to_sync(
    tiny_dataset, model_kind, parts, exchange_name
):
    """ISSUE 4's contract: the worker-backed transport is an execution
    shape, not a numerics change — losses, reduced gradients, wire bytes
    and eval metrics must match the synchronous pipeline bit for bit
    (same reduction order: the worker produces, the main thread alone
    collects and accumulates in device order)."""
    book = _book(tiny_dataset, parts)
    kwargs = dict(model_kind=model_kind, overlap=True, exchange_name=exchange_name)
    asy = _run_epochs(tiny_dataset, book, transport="worker", **kwargs)
    syn = _run_epochs(tiny_dataset, book, transport="sync", **kwargs)
    assert asy[0] == syn[0], "losses diverged"
    for ga, gs in zip(asy[1], syn[1]):
        assert np.array_equal(ga, gs), "reduced gradients diverged"
    assert asy[2] == syn[2], "wire bytes diverged"
    assert asy[3] == syn[3], "eval metrics diverged"


# ----------------------------------------------------------------------
# ISSUE 5: keyed rounding RNG — determinism from data coordinates
# ----------------------------------------------------------------------
class _ShuffledTransport(Transport):
    """A deterministic stand-in for adversarial job scheduling: deferred
    jobs accumulate and run in *reverse submission order* at join time
    (followups deferred by running jobs are picked up too).  Any
    retirement order a real pool could produce is a prefix-respecting
    interleaving of this and submission order, so equality across the two
    extremes is the order-independence property."""

    is_async = True  # engage the sharded encode + worker-decode paths
    workers = 4

    def __init__(self, num_devices):
        super().__init__(num_devices)
        self._queue: dict[str, list] = {}

    def defer(self, tag, job):
        self._queue.setdefault(tag, []).append(job)

    def complete(self, tag):
        while self._queue.get(tag):
            jobs = self._queue.pop(tag)
            for job in reversed(jobs):
                job()
        self._queue.pop(tag, None)
        return 0.0

    def collect(self, dst, tag):
        self.complete(tag)
        return super().collect(dst, tag)

    def reset_accounting(self):
        for tag in list(self._queue):
            self.complete(tag)
        super().reset_accounting()


@pytest.mark.parametrize(
    "exchange_name", ["exact", "quantized", "stale", "broadcast"]
)
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_keyed_rng_order_independent_across_worker_counts(
    tiny_dataset, exchange_name, workers
):
    """ISSUE 5's acceptance property: with rng_mode="keyed", losses,
    reduced gradients, wire bytes and eval metrics are bitwise-identical
    across worker counts in {sync, worker:1, worker:2, worker:4} for
    every exchange policy — determinism is a property of data
    coordinates, not of which thread encoded a block or when it retired.
    (The synchronous transport is the baseline arm of every comparison.)"""
    book = _book(tiny_dataset, 4)
    kwargs = dict(
        model_kind="gcn", overlap=True, exchange_name=exchange_name,
        rng_mode="keyed",
    )
    baseline = _run_epochs(tiny_dataset, book, transport="sync", **kwargs)
    arm = _run_epochs(
        tiny_dataset, book, transport=f"worker:{workers}", **kwargs,
    )
    assert arm[0] == baseline[0], "losses diverged"
    for ga, gb in zip(arm[1], baseline[1]):
        assert np.array_equal(ga, gb), "reduced gradients diverged"
    assert arm[2] == baseline[2], "wire bytes diverged"
    assert arm[3] == baseline[3], "eval metrics diverged"


@pytest.mark.parametrize(
    "exchange_name", ["exact", "quantized", "stale", "broadcast"]
)
@pytest.mark.parametrize("spec", ["process:2", "process:4"])
def test_keyed_rng_process_transport_matches_sync(
    tiny_dataset, exchange_name, spec
):
    """ISSUE 6's acceptance property: the process-backed transport — encode
    shards and per-receiver decodes in worker *processes*, payloads over
    shared-memory rings — is bitwise-identical to the synchronous path for
    every exchange policy under rng_mode="keyed", at any process count.
    The keyed RNG is what makes this legal: a worker process reproduces
    its shard from coordinates alone, and collect's sort-by-source anchor
    fixes the reduction order regardless of which process finished first."""
    book = _book(tiny_dataset, 4)
    kwargs = dict(
        model_kind="gcn", overlap=True, exchange_name=exchange_name,
        rng_mode="keyed",
    )
    baseline = _run_epochs(tiny_dataset, book, transport="sync", **kwargs)
    arm = _run_epochs(tiny_dataset, book, transport=spec, **kwargs)
    assert arm[0] == baseline[0], "losses diverged"
    for ga, gb in zip(arm[1], baseline[1]):
        assert np.array_equal(ga, gb), "reduced gradients diverged"
    assert arm[2] == baseline[2], "wire bytes diverged"
    assert arm[3] == baseline[3], "eval metrics diverged"


def test_process_transport_keeps_overlap_accounting(tiny_dataset):
    """The process path posts payload views from main-thread callbacks
    inside an open overlap window — every halo byte must still classify
    as hidden, exactly like the worker transport."""
    book = _book(tiny_dataset, 4)
    record = _run_epochs(
        tiny_dataset, book, model_kind="gcn", overlap=True,
        exchange_name="quantized", rng_mode="keyed", transport="process:3",
    )[4]
    assert record.hidden_byte_fraction() == 1.0
    assert all(t.overlapped_bytes == t.total_bytes for t in record.timelines)


def test_cluster_transport_spec_selection(tiny_dataset, tiny_book):
    """transport= accepts spec strings and TransportSpec objects and
    resolves "auto" at open."""
    from repro.comm.process import ProcessTransport
    from repro.comm.transports import TransportSpec

    with Cluster(
        tiny_dataset, tiny_book, overlap=True, transport="process:2"
    ) as cluster:
        assert isinstance(cluster.transport, ProcessTransport)
        assert cluster.transport_spec == TransportSpec("process", 2)
        # Derived mirrors stay coherent (perfbench reads them).
        assert cluster.async_transport is True
        assert cluster.transport_workers == 2
    with Cluster(
        tiny_dataset, tiny_book, transport=TransportSpec("sync")
    ) as cluster:
        assert type(cluster.transport) is Transport  # SyncTransport
        assert cluster.transport_workers == 0
    # Async backends degrade to sync for non-overlapped runs (resolve_spec:
    # there is no central window to hide work under).
    with Cluster(tiny_dataset, tiny_book, transport="process:2") as cluster:
        assert cluster.transport_spec == TransportSpec("sync")
    # "auto" resolves to a concrete backend at cluster open.
    with Cluster(
        tiny_dataset, tiny_book, overlap=True, transport="auto"
    ) as cluster:
        assert cluster.transport_spec.backend in ("sync", "worker")
    with pytest.raises(ValueError, match="unknown transport backend"):
        Cluster(tiny_dataset, tiny_book, transport="bogus:2")


def test_legacy_transport_knobs_are_gone():
    """PR 8 removed the pre-PR-6 shims for good: the spec string is the
    only spelling, and the legacy knob pair raises instead of warning."""
    with pytest.raises(TypeError):
        RunConfig(async_transport=True)
    with pytest.raises(TypeError):
        RunConfig(transport_workers=4)
    with pytest.raises(ValueError, match="unknown transport backend"):
        RunConfig(transport="bogus")


@pytest.mark.parametrize("exchange_name", ["exact", "quantized"])
def test_keyed_rng_survives_shuffled_job_retirement(tiny_dataset, exchange_name):
    """Shuffled job-retirement order: running every deferred job (encode
    shards and decode followups) in reverse submission order must leave
    the training trajectory bitwise-unchanged under keyed rounding."""
    book = _book(tiny_dataset, 4)
    kwargs = dict(
        model_kind="gcn", overlap=True, exchange_name=exchange_name,
        rng_mode="keyed",
    )
    plain = _run_epochs(tiny_dataset, book, transport="sync", **kwargs)
    shuffled = _run_epochs(
        tiny_dataset, book, transport="sync",
        transport_cls=_ShuffledTransport, **kwargs,
    )
    assert shuffled[0] == plain[0], "losses diverged"
    for ga, gb in zip(shuffled[1], plain[1]):
        assert np.array_equal(ga, gb), "reduced gradients diverged"
    assert shuffled[2] == plain[2], "wire bytes diverged"
    assert shuffled[3] == plain[3], "eval metrics diverged"
    # The shuffled transport still records a fully hidden interleave.
    assert shuffled[4].hidden_byte_fraction() == 1.0


# ----------------------------------------------------------------------
# PR 8: two-deep cross-step pipelining
# ----------------------------------------------------------------------
_DEPTH_BASELINES: dict = {}


def _depth_baseline(tiny_dataset, exchange_name):
    """Depth-1 sync run — the anchor every (depth, backend) arm must hit."""
    if exchange_name not in _DEPTH_BASELINES:
        book = _book(tiny_dataset, 4)
        _DEPTH_BASELINES[exchange_name] = _run_epochs(
            tiny_dataset, book, model_kind="gcn", overlap=True,
            exchange_name=exchange_name, rng_mode="keyed",
            transport="sync", pipeline_depth=1,
        )
    return _DEPTH_BASELINES[exchange_name]


@pytest.mark.parametrize(
    "exchange_name", ["exact", "quantized", "stale", "broadcast"]
)
@pytest.mark.parametrize("spec", ["sync", "worker:4", "process:2"])
@pytest.mark.parametrize("depth", [1, 2])
def test_pipeline_depth_matrix_bitwise_identical(
    tiny_dataset, exchange_name, spec, depth
):
    """PR 8's acceptance matrix: pipeline_depth in {1, 2} x {sync,
    worker:4, process:2} x every exchange policy is bitwise-identical —
    losses, reduced gradients, wire bytes, eval metrics — to the depth-1
    synchronous pipeline, and the interleave stays fully hidden.  Depth 2
    changes only *when* each step's post is dispatched (inside the
    previous step's marginal window), never what is posted: posts stay
    strictly ordered, so keyed rounding and collect's sort-by-source
    anchor pin the numerics."""
    book = _book(tiny_dataset, 4)
    baseline = _depth_baseline(tiny_dataset, exchange_name)
    arm = _run_epochs(
        tiny_dataset, book, model_kind="gcn", overlap=True,
        exchange_name=exchange_name, rng_mode="keyed",
        transport=spec, pipeline_depth=depth,
    )
    assert arm[0] == baseline[0], "losses diverged"
    for ga, gb in zip(arm[1], baseline[1]):
        assert np.array_equal(ga, gb), "reduced gradients diverged"
    assert arm[2] == baseline[2], "wire bytes diverged"
    assert arm[3] == baseline[3], "eval metrics diverged"
    record = arm[4]
    if record.timeline_summary.total_bytes > 0:
        assert record.hidden_byte_fraction() == 1.0


def test_depth2_timelines_report_lookahead(tiny_dataset):
    """Depth-2 epochs stamp every step timeline with the depth, and
    lookahead-posted forward steps carry the dispatch seconds that ran
    inside the previous marginal window (``quantize_s`` equals it)."""
    book = _book(tiny_dataset, 4)
    deep = _run_epochs(
        tiny_dataset, book, model_kind="gcn", overlap=True,
        exchange_name="quantized", rng_mode="keyed", pipeline_depth=2,
    )[4]
    assert all(t.pipeline_depth == 2 for t in deep.timelines)
    for t in deep.timelines:
        if t.phase == "fwd" and t.layer > 0:
            # Posted by the previous layer's marginal window.
            assert t.quantize_s == t.lookahead_post_s
        else:
            assert t.lookahead_post_s == 0.0
    shallow = _run_epochs(
        tiny_dataset, book, model_kind="gcn", overlap=True,
        exchange_name="quantized", rng_mode="keyed", pipeline_depth=1,
    )[4]
    assert all(t.pipeline_depth == 1 for t in shallow.timelines)
    assert all(t.lookahead_post_s == 0.0 for t in shallow.timelines)


def test_shuffled_retirement_across_tags():
    """Two tags in flight, the later tag retiring first: joining and
    collecting ``fwd/L1`` before ``fwd/L0`` must leave both tags' mailbox
    contents and byte accounting intact (per-tag state is independent)."""
    from repro.comm.transport import WorkerTransport

    t = WorkerTransport(2, workers=2)
    try:
        for layer in (0, 1):
            tag = f"fwd/L{layer}"

            def job(tag=tag, layer=layer):
                t.post(0, 1, tag, f"payload-L{layer}", 100 + layer)

            t.defer(tag, job)
        # Retire the later tag first, then the earlier one.
        assert t.complete("fwd/L1") >= 0.0
        assert t.collect(1, "fwd/L1") == {0: "payload-L1"}
        assert t.complete("fwd/L0") >= 0.0
        assert t.collect(1, "fwd/L0") == {0: "payload-L0"}
    finally:
        t.close()


def test_worker_decode_keeps_overlap_accounting_at_many_workers(tiny_dataset):
    """With worker-side decode the step's mailboxes are drained on the
    pool; the window opened before the post must still classify every
    byte as hidden."""
    book = _book(tiny_dataset, 4)
    record = _run_epochs(
        tiny_dataset, book, model_kind="gcn", overlap=True,
        exchange_name="quantized", rng_mode="keyed", transport="worker:4",
    )[4]
    assert record.hidden_byte_fraction() == 1.0
    assert all(t.overlapped_bytes == t.total_bytes for t in record.timelines)


def test_cluster_is_a_context_manager(tiny_dataset, tiny_book):
    """Satellite: `with Cluster(...)` closes the transport on exit — even
    when the body raises — and close stays idempotent afterwards."""
    with Cluster(
        tiny_dataset, tiny_book, hidden_dim=8, seed=0, overlap=True,
        transport="worker:2",
    ) as cluster:
        assert cluster.transport_workers == 2
        cluster.train_epoch(_make_exchange("quantized", "keyed"), 0)
    # Exited: the worker pool is gone and further deferred work refuses.
    with pytest.raises(RuntimeError, match="closed"):
        cluster.transport.defer("t", lambda: None)
    cluster.close()  # double-close is a no-op

    class Boom(Exception):
        pass

    try:
        with Cluster(
            tiny_dataset, tiny_book, hidden_dim=8, seed=0, overlap=True,
            transport="worker",
        ) as cluster:
            raise Boom
    except Boom:
        pass
    with pytest.raises(RuntimeError, match="closed"):
        cluster.transport.defer("t", lambda: None)


def test_transport_worker_resolution(tiny_dataset, tiny_book):
    from repro.comm.transport import host_spare_cores

    auto = Cluster(
        tiny_dataset, tiny_book, hidden_dim=8, seed=0, overlap=True,
        transport="worker",
    )
    assert auto.transport_workers == max(1, host_spare_cores())
    assert auto.transport.workers == auto.transport_workers
    pinned = Cluster(
        tiny_dataset, tiny_book, hidden_dim=8, seed=0, overlap=True,
        transport="worker:3",
    )
    assert pinned.transport.workers == 3
    sync = Cluster(
        tiny_dataset, tiny_book, hidden_dim=8, seed=0, overlap=True,
        transport="sync",
    )
    assert sync.transport_workers == 0 and sync.transport.workers == 0
    with pytest.raises(ValueError, match="workers must be >= 1"):
        Cluster(
            tiny_dataset, tiny_book, hidden_dim=8, seed=0, overlap=True,
            transport="worker:0",
        )
    for c in (auto, pinned, sync):
        c.close()


def test_async_transport_keeps_overlap_accounting(tiny_dataset):
    """Worker posts land inside the open central windows, so the measured
    interleave still reports every halo byte as hidden, and the timelines
    carry the join-wait the worker exposed (>= 0)."""
    book = _book(tiny_dataset, 4)
    record = _run_epochs(
        tiny_dataset, book, model_kind="gcn", overlap=True,
        exchange_name="quantized", transport="worker",
    )[4]
    assert record.hidden_byte_fraction() == 1.0
    assert all(t.overlapped_bytes == t.total_bytes for t in record.timelines)
    assert all(t.worker_wait_s >= 0.0 for t in record.timelines)
    summary = record.timeline_summary
    assert summary.steps == len(record.timelines)
    assert summary.total_bytes == sum(t.total_bytes for t in record.timelines)


def test_async_transport_auto_defaults(tiny_dataset, tiny_book):
    from repro.comm.transport import WorkerTransport, host_has_spare_core

    auto = Cluster(
        tiny_dataset, tiny_book, hidden_dim=8, seed=0, overlap=True,
    )
    assert auto.async_transport == host_has_spare_core()
    forced = Cluster(
        tiny_dataset, tiny_book, hidden_dim=8, seed=0, overlap=True,
        transport="worker",
    )
    assert forced.async_transport
    assert isinstance(forced.transport, WorkerTransport)
    # No pipeline -> no window to hide under -> always synchronous.
    off = Cluster(
        tiny_dataset, tiny_book, hidden_dim=8, seed=0, overlap=False,
        transport="worker",
    )
    assert not off.async_transport
    for c in (auto, forced, off):
        c.close()


def test_timeline_keep_caps_record_but_not_summary(tiny_dataset, tiny_book):
    capped = _run_epochs(
        tiny_dataset, tiny_book, model_kind="gcn", overlap=True,
        exchange_name="exact", epochs=1, timeline_keep=2,
    )[4]
    full = _run_epochs(
        tiny_dataset, tiny_book, model_kind="gcn", overlap=True,
        exchange_name="exact", epochs=1,
    )[4]
    assert len(full.timelines) == 6  # 3 layers x fwd/bwd
    assert len(capped.timelines) == 2  # last-N retained
    assert [(t.layer, t.phase) for t in capped.timelines] == [
        (1, "bwd"), (0, "bwd"),
    ]
    # The summary still covers every step, so the measured overlap
    # accounting is identical to the uncapped record's.
    assert capped.timeline_summary.steps == 6
    assert capped.timeline_summary.total_bytes == full.timeline_summary.total_bytes
    assert capped.hidden_byte_fraction() == full.hidden_byte_fraction()


@pytest.mark.parametrize("parts", [1, 4])
def test_overlap_emits_measured_timelines(tiny_dataset, parts):
    book = _book(tiny_dataset, parts)
    record = _run_epochs(
        tiny_dataset, book, model_kind="gcn", overlap=True, exchange_name="exact"
    )[4]
    # One timeline per (layer, direction), in execution order.
    assert [(t.layer, t.phase) for t in record.timelines] == [
        (0, "fwd"), (1, "fwd"), (2, "fwd"), (2, "bwd"), (1, "bwd"), (0, "bwd"),
    ]
    for t in record.timelines:
        assert t.measured
        assert t.comm_s == 0.0  # in-memory transport: interleave, not wire time
        for stage in (t.quantize_s, t.central_s, t.dequantize_s, t.marginal_s):
            assert stage >= 0.0
        assert t.comp_full_s == pytest.approx(t.central_s + t.marginal_s)
        assert t.overlapped_bytes <= t.total_bytes
    if parts == 1:
        # Empty marginal graph: the comm stage is a no-op.
        assert all(t.total_bytes == 0 for t in record.timelines)
        assert record.hidden_byte_fraction() == 0.0
    else:
        # Every halo byte was posted before its central window began.
        assert all(
            t.overlapped_bytes == t.total_bytes for t in record.timelines
        )
        assert record.hidden_byte_fraction() == 1.0


def test_non_overlap_record_has_no_timelines(tiny_dataset, tiny_book):
    record = _run_epochs(
        tiny_dataset, tiny_book, model_kind="gcn", overlap=False,
        exchange_name="exact", epochs=1,
    )[4]
    assert record.timelines == []
    assert record.hidden_byte_fraction() == 0.0


def test_trainer_defaults_overlap_for_adaqp_variants(tiny_dataset, tiny_book):
    cfg = RunConfig(epochs=6, hidden_dim=8, eval_every=2, reassign_period=4)
    pipe = train("adaqp-fixed", tiny_dataset, tiny_book, "2M-2D", cfg)
    plain = train(
        "adaqp-fixed", tiny_dataset, tiny_book, "2M-2D",
        cfg.with_overrides(overlap=False),
    )
    assert pipe.curve_loss == plain.curve_loss
    assert pipe.curve_val == plain.curve_val
    assert pipe.curve_test == plain.curve_test
    assert pipe.wire_bytes_total == plain.wire_bytes_total
    assert pipe.epoch_times == plain.epoch_times  # identical records/schedule


def test_trainer_retains_capped_timelines(tiny_dataset, tiny_book):
    """Multi-epoch runs keep bounded per-step state: the run-level summary
    covers every executed step while only the last
    ``RunConfig.timeline_history`` StepTimeline objects are retained."""
    cfg = RunConfig(
        epochs=6, hidden_dim=8, eval_every=2, reassign_period=4,
        timeline_history=5,
    )
    result = train("adaqp-fixed", tiny_dataset, tiny_book, "2M-2D", cfg)
    assert result.timeline_summary.steps == 6 * 6  # epochs x (layers x 2)
    assert len(result.recent_timelines) == 5
    assert result.timeline_summary.total_bytes > 0

    plain = train("vanilla", tiny_dataset, tiny_book, "2M-2D", cfg)
    assert plain.timeline_summary.steps == 0  # no pipeline, no timelines
    assert plain.recent_timelines == []


def test_overlap_system_set_matches_schedules():
    # The executed pipeline mirrors the simulated one: exactly the systems
    # timed by schedule_adaqp run split-phase.
    assert OVERLAP_SYSTEMS == {
        "adaqp", "adaqp-uniform", "adaqp-fixed", "vanilla-overlap",
    }


def test_overlap_requires_fused_compute(tiny_dataset, tiny_book):
    cluster = Cluster(
        tiny_dataset, tiny_book, hidden_dim=8, seed=0,
        fused_compute=False, overlap=True,
    )
    assert not cluster.overlap  # degrades to the legacy loop, no pipeline
    record = cluster.train_epoch(ExactHaloExchange(), 0)
    assert record.timelines == []


def test_overlap_buffers_survive_interleaved_evals(tiny_dataset):
    """Eval passes run the non-overlapped forward on the same engine
    buffers; the sharing must be invisible to training trajectories."""
    book = _book(tiny_dataset, 4)

    def losses(with_eval):
        cluster = Cluster(
            tiny_dataset, book, hidden_dim=8, num_layers=2, dropout=0.5, seed=0,
            fused_compute=True, overlap=True,
        )
        exchange = ExactHaloExchange()
        out = []
        for epoch in range(3):
            out.append(cluster.train_epoch(exchange, epoch).loss)
            if with_eval:
                cluster.evaluate()
        return out

    assert losses(True) == losses(False)


# ----------------------------------------------------------------------
# Split operators
# ----------------------------------------------------------------------
def test_restrict_rows_partitions_operator(tiny_dataset):
    book = _book(tiny_dataset, 4)
    cluster = Cluster(
        tiny_dataset, book, hidden_dim=8, num_layers=2, seed=0, overlap=True
    )
    engine = cluster._compute_engine()
    plan = engine.overlap_plan()
    # Central and marginal rows partition the owned region.
    merged = np.sort(np.concatenate([plan.rows_central, plan.rows_marginal]))
    assert np.array_equal(merged, np.arange(engine.total_own))
    # The two halves partition the operator's nonzeros exactly.
    assert (
        plan.matrix_central.nnz + plan.matrix_marginal.nnz == engine.matrix.nnz
    )
    recombined = plan.matrix_central + plan.matrix_marginal
    assert (recombined != engine.matrix).nnz == 0
    # Central rows never touch halo columns (what makes the overlap legal).
    if plan.matrix_central.nnz:
        assert int(plan.matrix_central.indices.max()) < engine.total_own
    # The transpose row blocks partition P^T.
    assert (
        plan.matrix_t_own.shape[0] + plan.matrix_t_halo.shape[0]
        == engine.matrix_t.shape[0]
    )


def test_restrict_rows_rejects_bad_mask():
    import scipy.sparse as sp

    m = sp.csr_matrix(np.eye(3, dtype=np.float32))
    with pytest.raises(ValueError):
        restrict_rows(m, np.ones(2, dtype=bool))


def test_split_spmv_accumulates_to_full_product(tiny_dataset):
    book = _book(tiny_dataset, 3)
    cluster = Cluster(tiny_dataset, book, hidden_dim=8, seed=0, overlap=True)
    engine = cluster._compute_engine()
    plan = engine.overlap_plan()
    gen = np.random.default_rng(0)
    x = gen.normal(size=(engine.matrix.shape[1], 6)).astype(np.float32)
    full = np.asarray(engine.matrix @ x)
    split = np.zeros_like(full)
    from repro.cluster.compute import _spmv_accumulate

    _spmv_accumulate(plan.matrix_central, x, split)
    _spmv_accumulate(plan.matrix_marginal, x, split)
    assert np.array_equal(full, split)
