"""Huge-graph mode equivalence (ISSUE 10 tentpole).

The headline contract: training out of core — features, labels and
operators memmapped from the partition store, paged in one device window
at a time — produces the **same** losses, wire bytes and eval curves as
training the same store fully materialized in RAM.  Not approximately,
bitwise.  Three angles pin it down:

* stream vs. materialize over the same store (the benchmark's two arms);
* stream engine vs. the standard in-RAM engine on the globally
  reconstructed dataset (the store holds an isomorphic renumbering of
  the generated graph — boundary-first within each partition — so the
  reconstruction trains identically through the ordinary path);
* worker/process transports vs. sync on the streaming arm (the existing
  transport contract must survive memmapped inputs).
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.config import RunConfig
from repro.core.trainer import train
from repro.graph.datasets import DatasetSpec, GraphDataset
from repro.graph.graph import Graph
from repro.graph.partition.book import PartitionBook


def _run_cfg(**overrides):
    base = dict(
        epochs=3,
        hidden_dim=16,
        num_layers=3,
        dropout=0.5,
        seed=7,
        eval_every=1,
        rng_mode="keyed",
        transport="sync",
    )
    base.update(overrides)
    return RunConfig(**base)


@pytest.fixture(scope="module")
def stream_run(huge_store):
    """The reference arm: adaqp over the memmapped store, sync transport."""
    return train(
        "adaqp", huge_store.dataset(), huge_store.book(), "2M-2D", _run_cfg()
    )


def test_stream_matches_materialized_bitwise(huge_store, stream_run):
    inram = train(
        "adaqp",
        huge_store.dataset(materialize=True),
        huge_store.book(),
        "2M-2D",
        _run_cfg(),
    )
    assert stream_run.curve_loss == inram.curve_loss
    assert stream_run.wire_bytes_total == inram.wire_bytes_total
    assert stream_run.curve_val == inram.curve_val
    assert stream_run.curve_test == inram.curve_test


def _reconstruct_global_dataset(store):
    """Assemble the store's graph/attributes into an ordinary dataset.

    The store's global numbering (contiguous partition ranges,
    boundary-first within each) *is* the graph — reading every
    partition's adjacency back out and re-gluing it yields the exact
    dataset the standard in-RAM path would train on.
    """
    n = store.num_nodes
    bounds = store.part_bounds
    spec = store.spec
    feats = np.zeros((n, spec.num_features), np.float32)
    labels = np.zeros(n, np.int64)
    masks = [np.zeros(n, bool) for _ in range(3)]
    rows_all, cols_all = [], []
    for p in range(store.num_parts):
        spart = store.partition(p, materialize=True)
        part = spart.part
        coo = part.adj.tocoo()
        glob = np.concatenate([part.owned_global, part.halo_global])
        rows_all.append(part.owned_global[coo.row])
        cols_all.append(glob[coo.col])
        s, e = int(bounds[p]), int(bounds[p + 1])
        feats[s:e] = spart.features
        labels[s:e] = spart.labels
        for mask, local in zip(
            masks, (spart.train_mask, spart.val_mask, spart.test_mask)
        ):
            mask[s:e] = local
    rows = np.concatenate(rows_all)
    cols = np.concatenate(cols_all)
    adj = sp.csr_matrix((np.ones(rows.size), (rows, cols)), shape=(n, n))
    adj.sum_duplicates()
    adj.sort_indices()
    graph = Graph(
        indptr=adj.indptr.astype(np.int64),
        indices=adj.indices.astype(np.int64),
    )
    ds = GraphDataset(
        DatasetSpec(
            name="huge-reconstructed",
            paper_name="huge-reconstructed",
            num_nodes=n,
            avg_degree=spec.avg_degree,
            num_features=spec.num_features,
            num_classes=spec.num_classes,
            multilabel=False,
        ),
        graph,
        feats,
        labels,
        *masks,
    )
    book = PartitionBook(
        part_of=np.repeat(
            np.arange(store.num_parts, dtype=np.int64), np.diff(bounds)
        ),
        num_parts=store.num_parts,
    )
    return ds, book


@pytest.mark.parametrize("system", ["vanilla", "adaqp-fixed"])
def test_stream_matches_standard_engine(huge_store, system):
    """The streaming engine vs. the ordinary in-RAM path on the same graph.

    ``overlap=False`` pins both runs to the plain schedule; the streaming
    engine's only structural wire delta (it skips the layer-0 backward
    gradient exchange — input features are not trainable) affects neither
    system here: vanilla sends exact payloads both ways and adaqp-fixed's
    layer-0 gradients never feed a parameter update.
    """
    cfg = _run_cfg(overlap=False)
    streamed = train(
        system, huge_store.dataset(), huge_store.book(), "2M-2D", cfg
    )
    gds, book = _reconstruct_global_dataset(huge_store)
    standard = train(system, gds, book, "2M-2D", cfg)
    assert streamed.curve_loss == standard.curve_loss
    assert streamed.curve_val == standard.curve_val
    assert streamed.curve_test == standard.curve_test


@pytest.mark.parametrize("spec", ["worker:2", "process:2"])
def test_stream_transports_bitwise(huge_store, stream_run, spec):
    run = train(
        "adaqp",
        huge_store.dataset(),
        huge_store.book(),
        "2M-2D",
        _run_cfg(transport=spec),
    )
    assert run.curve_loss == stream_run.curve_loss
    assert run.wire_bytes_total == stream_run.wire_bytes_total


def test_streaming_estimate_below_materialized(huge_store):
    """The analytic model must predict streaming's headroom: a streaming
    cluster's estimated peak stays below the store's materialized bytes
    plus the shared scratch — the inequality the benchmark measures."""
    from repro.cluster.cluster import Cluster
    from repro.cluster.memory import estimate_memory, estimate_peak_resident

    cluster = Cluster(
        huge_store.dataset(),
        huge_store.book(),
        model_kind="gcn",
        hidden_dim=16,
        num_layers=2,
        dropout=0.0,
        seed=0,
    )
    try:
        fps = estimate_memory(cluster)
        assert all(fp.streaming for fp in fps)
        assert all(fp.memmap_window_bytes > 0 for fp in fps)
        # Only two windows are resident at once: the peak estimate must
        # undercut the naive all-windows sum whenever there are > 2 parts.
        naive = sum(fp.resident_bytes for fp in fps)
        assert estimate_peak_resident(cluster) < naive + huge_store.materialized_bytes()
    finally:
        cluster.close()
