"""Cluster executor: the distributed-equals-serial contract and accounting."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.exchange import (
    ExactHaloExchange,
    FixedBitProvider,
    QuantizedHaloExchange,
)
from repro.graph.partition.api import partition_graph
from repro.graph.partition.book import PartitionBook
from repro.nn.optim import Adam


def _cluster(ds, k, kind="gcn", dropout=0.0, seed=7, hidden=16):
    if k == 1:
        book = PartitionBook(part_of=np.zeros(ds.num_nodes, dtype=np.int32), num_parts=1)
    else:
        book = partition_graph(ds.graph, k, method="metis", seed=0)
    return Cluster(
        ds, book, model_kind=kind, hidden_dim=hidden, num_layers=3,
        dropout=dropout, seed=seed,
    )


@pytest.mark.parametrize("kind", ["gcn", "sage"])
def test_distributed_equals_single_machine(tiny_dataset, kind):
    """K devices with exact exchange reproduce 1-device loss and gradients
    to float32 tolerance (the paper's premise: Vanilla is exact)."""
    c1 = _cluster(tiny_dataset, 1, kind)
    c4 = _cluster(tiny_dataset, 4, kind)
    r1 = c1.train_epoch(ExactHaloExchange(), 0)
    r4 = c4.train_epoch(ExactHaloExchange(), 0)
    assert abs(r1.loss - r4.loss) < 1e-5
    g1 = c1.devices[0].model.grad_vector()
    g4 = c4.devices[0].model.grad_vector()
    rel = np.abs(g1 - g4).max() / (np.abs(g1).max() + 1e-12)
    assert rel < 1e-4


def test_replicas_start_identical(tiny_dataset):
    c = _cluster(tiny_dataset, 4)
    states = [dev.model.state_dict() for dev in c.devices]
    for s in states[1:]:
        for k, v in s.items():
            assert np.array_equal(v, states[0][k])


def test_replicas_stay_identical_after_step(tiny_dataset):
    c = _cluster(tiny_dataset, 3, dropout=0.5)
    opts = [Adam(dev.model.parameters(), lr=0.01) for dev in c.devices]
    for epoch in range(3):
        c.train_epoch(ExactHaloExchange(), epoch)
        for opt in opts:
            opt.step()
    s0 = c.devices[0].model.state_dict()
    s2 = c.devices[2].model.state_dict()
    for k in s0:
        assert np.array_equal(s0[k], s2[k])


def test_loss_decreases_with_training(tiny_single_label_dataset):
    c = _cluster(tiny_single_label_dataset, 2, hidden=16)
    opts = [Adam(dev.model.parameters(), lr=0.01) for dev in c.devices]
    losses = []
    for epoch in range(15):
        rec = c.train_epoch(ExactHaloExchange(), epoch)
        for opt in opts:
            opt.step()
        losses.append(rec.loss)
    assert losses[-1] < 0.8 * losses[0]
    # And the trajectory is (weakly) monotone after warm-up.
    assert all(b <= a + 1e-6 for a, b in zip(losses[2:], losses[3:]))


def test_quantized_training_converges_close_to_exact(tiny_single_label_dataset):
    def run(exchange_factory):
        c = _cluster(tiny_single_label_dataset, 4, hidden=16)
        opts = [Adam(dev.model.parameters(), lr=0.01) for dev in c.devices]
        for epoch in range(12):
            c.train_epoch(exchange_factory(), epoch)
            for opt in opts:
                opt.step()
        return c.evaluate()["val"]

    exact = run(ExactHaloExchange)
    rng = np.random.default_rng(0)
    quant = run(lambda: QuantizedHaloExchange(FixedBitProvider(4), rng))
    assert abs(exact - quant) < 0.05


def test_record_structure(tiny_dataset):
    c = _cluster(tiny_dataset, 4)
    rec = c.train_epoch(ExactHaloExchange(), 0)
    assert len(rec.phases) == 6  # 3 layers x {fwd, bwd}
    fwd_layers = [p.layer for p in rec.phases if p.phase == "fwd"]
    bwd_layers = [p.layer for p in rec.phases if p.phase == "bwd"]
    assert fwd_layers == [0, 1, 2] and bwd_layers == [2, 1, 0]
    for p in rec.phases:
        assert np.all(np.diag(p.bytes_matrix) == 0)
        assert p.bytes_matrix.sum() > 0
        assert (p.agg_flops >= p.agg_flops_central).all()
        assert (p.dense_flops > 0).all()
    assert rec.grad_allreduce_bytes == c.devices[0].model.grad_vector().nbytes
    assert rec.total_wire_bytes() == rec.bytes_by_pair().sum()


def test_quant_bytes_recorded_only_when_quantizing(tiny_dataset):
    c = _cluster(tiny_dataset, 4)
    rec_exact = c.train_epoch(ExactHaloExchange(), 0)
    assert all(p.quant_float_bytes.sum() == 0 for p in rec_exact.phases)
    c2 = _cluster(tiny_dataset, 4)
    rng = np.random.default_rng(0)
    rec_q = c2.train_epoch(QuantizedHaloExchange(FixedBitProvider(2), rng), 0)
    assert all(p.quant_float_bytes.sum() > 0 for p in rec_q.phases)


def test_quantized_wire_bytes_much_smaller(tiny_dataset):
    c = _cluster(tiny_dataset, 4)
    exact = c.train_epoch(ExactHaloExchange(), 0).total_wire_bytes()
    c2 = _cluster(tiny_dataset, 4)
    rng = np.random.default_rng(0)
    q2 = c2.train_epoch(QuantizedHaloExchange(FixedBitProvider(2), rng), 0).total_wire_bytes()
    assert q2 < 0.25 * exact


def test_evaluate_returns_all_splits(tiny_dataset):
    c = _cluster(tiny_dataset, 2)
    metrics = c.evaluate()
    assert set(metrics) == {"train", "val", "test"}
    for v in metrics.values():
        assert 0.0 <= v <= 1.0


def test_full_logits_scatter(tiny_dataset):
    c = _cluster(tiny_dataset, 3)
    logits = c.full_logits()
    assert logits.shape == (tiny_dataset.num_nodes, tiny_dataset.num_classes)
    assert np.isfinite(logits).all()


def test_invalid_model_kind(tiny_dataset, tiny_book):
    with pytest.raises(ValueError):
        Cluster(tiny_dataset, tiny_book, model_kind="gat")
