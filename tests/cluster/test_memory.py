"""Memory/size estimator (the footnote-1 argument)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.memory import estimate_memory
from repro.graph.partition.api import partition_graph


@pytest.fixture(scope="module")
def cluster(tiny_dataset):
    book = partition_graph(tiny_dataset.graph, 4, method="metis", seed=0)
    return Cluster(tiny_dataset, book, model_kind="gcn", hidden_dim=32, num_layers=3,
                   dropout=0.0, seed=0)


def test_one_footprint_per_device(cluster):
    footprints = estimate_memory(cluster)
    assert len(footprints) == 4
    assert [fp.device for fp in footprints] == [0, 1, 2, 3]


def test_feature_bytes_exact(cluster):
    for fp, dev in zip(estimate_memory(cluster), cluster.devices):
        assert fp.feature_bytes == dev.features.nbytes


def test_param_and_grad_bytes_match_model(cluster):
    for fp, dev in zip(estimate_memory(cluster), cluster.devices):
        assert fp.model_param_bytes == dev.model.num_parameters() * 4
        assert fp.model_grad_bytes == fp.model_param_bytes


def test_messages_dwarf_gradients(cluster):
    """The paper's footnote-1 shape at our scale."""
    for fp in estimate_memory(cluster):
        assert fp.message_bytes > 2 * fp.model_grad_bytes


def test_total_is_sum_of_components(cluster):
    fp = estimate_memory(cluster)[0]
    assert fp.total_bytes == (
        fp.feature_bytes + fp.activation_bytes + fp.halo_buffer_bytes
        + fp.model_param_bytes + fp.model_grad_bytes
    )
