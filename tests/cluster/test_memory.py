"""Memory/size estimator (the footnote-1 argument)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.memory import (
    estimate_memory,
    estimate_peak_resident,
    host_memory,
)
from repro.graph.partition.api import partition_graph


@pytest.fixture(scope="module")
def cluster(tiny_dataset):
    book = partition_graph(tiny_dataset.graph, 4, method="metis", seed=0)
    return Cluster(tiny_dataset, book, model_kind="gcn", hidden_dim=32, num_layers=3,
                   dropout=0.0, seed=0)


def test_one_footprint_per_device(cluster):
    footprints = estimate_memory(cluster)
    assert len(footprints) == 4
    assert [fp.device for fp in footprints] == [0, 1, 2, 3]


def test_feature_bytes_exact(cluster):
    for fp, dev in zip(estimate_memory(cluster), cluster.devices):
        assert fp.feature_bytes == dev.features.nbytes


def test_param_and_grad_bytes_match_model(cluster):
    for fp, dev in zip(estimate_memory(cluster), cluster.devices):
        assert fp.model_param_bytes == dev.model.num_parameters() * 4
        assert fp.model_grad_bytes == fp.model_param_bytes


def test_messages_dwarf_gradients(cluster):
    """The paper's footnote-1 shape at our scale."""
    for fp in estimate_memory(cluster):
        assert fp.message_bytes > 2 * fp.model_grad_bytes


def test_total_is_sum_of_components(cluster):
    fp = estimate_memory(cluster)[0]
    assert fp.total_bytes == (
        fp.feature_bytes + fp.activation_bytes + fp.halo_buffer_bytes
        + fp.model_param_bytes + fp.model_grad_bytes
        + fp.decode_workspace_bytes + fp.shm_slab_bytes
    )


def test_decode_workspace_is_ab_pair(cluster):
    """Two halo-row workspaces per device since the two-deep pipeline."""
    max_width = max(cluster.dims[:-1])
    for fp, dev in zip(estimate_memory(cluster), cluster.devices):
        assert fp.decode_workspace_bytes == 2 * dev.part.n_halo * max_width * 4


def test_shm_slab_zero_without_process_transport(cluster):
    for fp in estimate_memory(cluster):
        assert fp.shm_slab_bytes == 0


def test_stacked_buffers_counted_for_fused_engine(cluster):
    """The fused engine preallocates; resident counts its stacked rows."""
    for fp in estimate_memory(cluster):
        assert fp.stacked_buffer_bytes > 0
        assert not fp.streaming
        assert fp.memmap_window_bytes == 0
        # In-RAM fused mode: features alongside their stacked layer-0 copy.
        assert fp.resident_bytes == (
            fp.model_param_bytes + fp.model_grad_bytes
            + fp.decode_workspace_bytes + fp.shm_slab_bytes
            + fp.feature_bytes + fp.stacked_buffer_bytes
        )


def test_legacy_executor_resident_falls_back(tiny_dataset):
    book = partition_graph(tiny_dataset.graph, 2, method="metis", seed=0)
    legacy = Cluster(tiny_dataset, book, model_kind="gcn", hidden_dim=8,
                     num_layers=2, dropout=0.0, seed=0, fused_compute=False)
    for fp in estimate_memory(legacy):
        assert fp.stacked_buffer_bytes == 0
        assert fp.resident_bytes == (
            fp.model_param_bytes + fp.model_grad_bytes
            + fp.decode_workspace_bytes + fp.shm_slab_bytes
            + fp.feature_bytes + fp.activation_bytes + fp.halo_buffer_bytes
        )


def test_estimate_peak_resident_sums_devices(cluster):
    fps = estimate_memory(cluster)
    send_rows = sum(dev.part.n_halo for dev in cluster.devices)
    quant_stage = send_rows * 2 * sum(cluster.dims[:-1]) * 5
    assert estimate_peak_resident(cluster) == (
        sum(fp.resident_bytes for fp in fps) + quant_stage
    )


def test_host_memory_parses_meminfo(tmp_path):
    p = tmp_path / "meminfo"
    p.write_text("MemTotal:       16384 kB\nMemFree:  4096 kB\n"
                 "MemAvailable:   8192 kB\n")
    hm = host_memory(p)
    assert hm.total_bytes == 16384 * 1024
    assert hm.available_bytes == 8192 * 1024


def test_host_memory_none_when_unreadable(tmp_path):
    assert host_memory(tmp_path / "missing") is None
    partial = tmp_path / "partial"
    partial.write_text("MemTotal: 1 kB\n")
    assert host_memory(partial) is None
