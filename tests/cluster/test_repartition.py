"""Elastic repartition (ISSUE 9 tentpole): mid-run N→M resizes.

The equivalence contract: an N-partition run resized to M devices at an
epoch boundary converges to the **same** losses as a fresh M-partition
run restored from the same checkpoint.  The restore rule that makes this
hold: model/optimizer state is partition-independent (replica symmetry)
and restores at any M, while partition-bound state (dropout streams,
exchange caches, assigner traces) starts fresh whenever the device count
changed — so the resized run and the fresh-M run take identical paths.
"""

import shutil

import numpy as np
import pytest

from repro.cluster.checkpoint import capture_state, load_checkpoint, restore_state
from repro.cluster.cluster import Cluster
from repro.comm.costmodel import LinkCostModel
from repro.comm.topology import parse_topology
from repro.core.config import RunConfig
from repro.core.trainer import build_system, train
from repro.graph.partition.api import partition_graph
from repro.nn.optim import Adam


@pytest.fixture(scope="module")
def two_part_book(tiny_dataset):
    return partition_graph(tiny_dataset.graph, 2, method="metis", seed=0)


def _cfg(**overrides):
    base = dict(epochs=6, hidden_dim=8, eval_every=2, reassign_period=2)
    base.update(overrides)
    return RunConfig(**base)


# ----------------------------------------------------------------------
# Cluster.repartition mechanics
# ----------------------------------------------------------------------
def test_repartition_carries_trained_replica(tiny_dataset, tiny_book, two_part_book):
    with Cluster(tiny_dataset, tiny_book, hidden_dim=8) as c4:
        trained = c4.devices[0].model.state_dict()
        with c4.repartition(two_part_book) as c2:
            assert c2.num_devices == 2
            for dev in c2.devices:
                got = dev.model.state_dict()
                for name in trained:
                    np.testing.assert_array_equal(got[name], trained[name])
            # The resized cluster is a full citizen: it can train.
            from repro.cluster.exchange import ExactHaloExchange

            record = c2.train_epoch(ExactHaloExchange(), 0)
            assert np.isfinite(record.loss)


def test_repartition_keeps_ctor_shape_and_transport_override(
    tiny_dataset, tiny_book, two_part_book
):
    with Cluster(
        tiny_dataset, tiny_book, hidden_dim=8, num_layers=2,
        overlap=True, transport="sync",
    ) as c4:
        # overlap=True carries over, so the async override resolves as-is
        # instead of degrading to sync.
        with c4.repartition(two_part_book, transport="worker:1") as c2:
            assert c2.dims == c4.dims
            assert c2.model_kind == c4.model_kind
            assert c2.transport_spec.backend == "worker"


# ----------------------------------------------------------------------
# N→M equivalence: resized-from-live == fresh-M-from-checkpoint
# ----------------------------------------------------------------------
def test_resized_run_matches_fresh_restore_bitwise(
    tiny_dataset, tiny_book, two_part_book
):
    cfg = _cfg(transport="sync")
    topo4, topo2 = parse_topology("2M-2D"), parse_topology("2M-1D")
    cm4 = LinkCostModel.for_topology(topo4)
    cm2 = LinkCostModel.for_topology(topo2)

    def run_epochs(cluster, setup, opts, start, stop):
        losses = []
        for epoch in range(start, stop):
            losses.append(cluster.train_epoch(setup.exchange, epoch).loss)
            for opt in opts:
                opt.step()
        return losses

    # Phase 1: 4-way training to the epoch-3 boundary.
    c4 = Cluster(tiny_dataset, tiny_book, hidden_dim=8, transport="sync")
    setup4 = build_system("adaqp-fixed", c4, cm4, cfg)
    opts4 = [Adam(d.model.parameters(), lr=cfg.lr) for d in c4.devices]
    run_epochs(c4, setup4, opts4, 0, 3)
    state = capture_state(c4, opts4, setup4.exchange, epoch=3)

    # Path A: live resize of the running cluster (params carried in
    # memory), partition-bound state re-attached through restore_state.
    c2a = c4.repartition(two_part_book)
    c4.close()
    setup2a = build_system("adaqp-fixed", c2a, cm2, cfg)
    opts2a = [Adam(d.model.parameters(), lr=cfg.lr) for d in c2a.devices]
    start_a = restore_state(state, c2a, opts2a, setup2a.exchange)
    losses_a = run_epochs(c2a, setup2a, opts2a, start_a, cfg.epochs)
    c2a.close()

    # Path B: a brand-new 2-part cluster restored from the same snapshot.
    c2b = Cluster(tiny_dataset, two_part_book, hidden_dim=8, transport="sync")
    setup2b = build_system("adaqp-fixed", c2b, cm2, cfg)
    opts2b = [Adam(d.model.parameters(), lr=cfg.lr) for d in c2b.devices]
    start_b = restore_state(state, c2b, opts2b, setup2b.exchange)
    losses_b = run_epochs(c2b, setup2b, opts2b, start_b, cfg.epochs)
    c2b.close()

    assert start_a == start_b == 3
    assert losses_a == losses_b  # bitwise, not approximately


def test_elastic_resume_through_trainer_is_deterministic(
    tmp_path, tiny_dataset, tiny_book, two_part_book
):
    """The end-to-end elastic shape: checkpoint a 4-way adaqp run, resume
    it twice onto 2 devices — both resumes agree bitwise, start at the
    checkpointed epoch, and converge (the run finishes training)."""
    d1 = tmp_path / "a"
    train(
        "adaqp", tiny_dataset, tiny_book, "2M-2D",
        _cfg(epochs=3, checkpoint_dir=str(d1)),
    )
    assert load_checkpoint(d1).num_parts == 4
    d2 = tmp_path / "b"
    shutil.copytree(d1, d2)
    runs = [
        train(
            "adaqp", tiny_dataset, two_part_book, "2M-1D",
            _cfg(checkpoint_dir=str(d), resume=True),
        )
        for d in (d1, d2)
    ]
    assert runs[0].start_epoch == runs[1].start_epoch == 3
    assert runs[0].curve_loss == runs[1].curve_loss
    assert runs[0].epochs == 3  # epochs 3..5 executed on the new size
    assert np.isfinite(runs[0].final_val)
    # The resized run's own checkpoints now carry the new partition count.
    assert load_checkpoint(d1).num_parts == 2


def test_shrink_and_grow_both_work(tmp_path, tiny_dataset, tiny_book, two_part_book):
    """Grow (2→4) is the same elastic rule as shrink (4→2)."""
    d = tmp_path / "ck"
    train(
        "adaqp-fixed", tiny_dataset, two_part_book, "2M-1D",
        _cfg(epochs=2, checkpoint_dir=str(d)),
    )
    grown = train(
        "adaqp-fixed", tiny_dataset, tiny_book, "2M-2D",
        _cfg(epochs=4, checkpoint_dir=str(d), resume=True),
    )
    assert grown.start_epoch == 2
    assert grown.epochs == 2
    assert load_checkpoint(d).num_parts == 4
