"""Checkpoint/restore (ISSUE 9 tentpole): bitwise keyed-replay resume.

The headline contract: under ``rng_mode="keyed"`` a run that is
interrupted and resumed from its last epoch-boundary checkpoint produces
the **same** losses, wire bytes and final parameters as the uninterrupted
run — not approximately, bitwise.  Everything else here pins the
machinery that makes that true: the on-disk format's atomicity, the
restore-time validation, and the double-restore idempotency the
fault-tolerance story leans on (a crashed resume must be re-resumable).
"""

import pickle

import numpy as np
import pytest

from repro.cluster.checkpoint import (
    ClusterState,
    capture_state,
    latest_checkpoint_epoch,
    list_checkpoint_epochs,
    load_checkpoint,
    restore_state,
    save_checkpoint,
)
from repro.comm.faults import FaultPlan
from repro.core.config import RunConfig
from repro.core.trainer import train


def _cfg(**overrides):
    base = dict(epochs=6, hidden_dim=8, eval_every=2, reassign_period=2)
    base.update(overrides)
    return RunConfig(**base)


def _final_state(ckpt_dir) -> ClusterState:
    state = load_checkpoint(ckpt_dir)
    assert state is not None
    return state


def _assert_states_bitwise_equal(a: ClusterState, b: ClusterState) -> None:
    assert a.epoch == b.epoch
    for name in a.model:
        np.testing.assert_array_equal(a.model[name], b.model[name])
    assert a.optimizer["step_count"] == b.optimizer["step_count"]
    for slot in ("m", "v"):
        for x, y in zip(a.optimizer[slot], b.optimizer[slot]):
            np.testing.assert_array_equal(x, y)


# ----------------------------------------------------------------------
# On-disk format
# ----------------------------------------------------------------------
def test_checkpoint_files_and_latest_marker(tmp_path, tiny_dataset, tiny_book):
    train(
        "adaqp-fixed", tiny_dataset, tiny_book, "2M-2D",
        _cfg(epochs=3, checkpoint_dir=str(tmp_path)),
    )
    assert list_checkpoint_epochs(tmp_path) == [1, 2, 3]
    assert latest_checkpoint_epoch(tmp_path) == 3
    assert (tmp_path / "epoch-00003" / "meta.json").is_file()
    state = load_checkpoint(tmp_path)
    assert state.epoch == 3 and state.num_parts == 4
    # Specific-epoch load, and a stale LATEST marker falls back to the scan.
    assert load_checkpoint(tmp_path, epoch=1).epoch == 1
    (tmp_path / "LATEST").write_text("99\n")
    assert latest_checkpoint_epoch(tmp_path) == 3
    # Unreadable future formats are a typed error, not garbage state.
    state.version = 999
    save_checkpoint(tmp_path, state)
    with pytest.raises(ValueError, match="format version"):
        load_checkpoint(tmp_path)


def test_checkpoint_every_cadence(tmp_path, tiny_dataset, tiny_book):
    train(
        "adaqp-fixed", tiny_dataset, tiny_book, "2M-2D",
        _cfg(epochs=5, checkpoint_dir=str(tmp_path), checkpoint_every=2),
    )
    # Every 2nd epoch boundary, plus the final epoch unconditionally.
    assert list_checkpoint_epochs(tmp_path) == [2, 4, 5]


def test_load_checkpoint_empty_dir_returns_none(tmp_path):
    assert load_checkpoint(tmp_path) is None
    assert latest_checkpoint_epoch(tmp_path) is None
    assert list_checkpoint_epochs(tmp_path / "missing") == []


def test_load_checkpoint_rejects_foreign_pickle(tmp_path):
    (tmp_path / "epoch-00001").mkdir()
    with open(tmp_path / "epoch-00001" / "state.pkl", "wb") as fh:
        pickle.dump({"not": "a ClusterState"}, fh)
    with pytest.raises(ValueError, match="ClusterState"):
        load_checkpoint(tmp_path, epoch=1)


# ----------------------------------------------------------------------
# Bitwise resume equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("system", ["adaqp", "pipegcn", "sancus"])
def test_interrupted_resume_is_bitwise_identical(
    tmp_path, tiny_dataset, tiny_book, system
):
    """losses + wire bytes + final model/optimizer state, byte for byte —
    across the adaptive system (assigner + keyed rounding) and both
    stale-cache baselines (whose caches the checkpoint must carry)."""
    d_full, d_split = tmp_path / "full", tmp_path / "split"
    full = train(
        system, tiny_dataset, tiny_book, "2M-2D",
        _cfg(checkpoint_dir=str(d_full)),
    )
    part1 = train(
        system, tiny_dataset, tiny_book, "2M-2D",
        _cfg(epochs=3, checkpoint_dir=str(d_split)),
    )
    part2 = train(
        system, tiny_dataset, tiny_book, "2M-2D",
        _cfg(checkpoint_dir=str(d_split), resume=True),
    )
    assert part2.start_epoch == 3
    assert part1.curve_loss + part2.curve_loss == full.curve_loss
    assert part1.wire_bytes_total + part2.wire_bytes_total == full.wire_bytes_total
    # Final parameters and Adam slots carry the whole gradient history:
    # equality here means every gradient along the way was identical too.
    _assert_states_bitwise_equal(_final_state(d_full), _final_state(d_split))


def test_crash_mid_run_then_resume_is_bitwise_identical(
    tmp_path, tiny_dataset, tiny_book
):
    """The real interruption shape: an injected job fault crashes training
    mid-epoch; the checkpoints already on disk restart it bitwise."""
    d_full, d_crash = tmp_path / "full", tmp_path / "crash"
    full = train(
        "adaqp-fixed", tiny_dataset, tiny_book, "2M-2D",
        _cfg(checkpoint_dir=str(d_full)),
    )
    with pytest.raises(RuntimeError, match="injected transport job fault"):
        train(
            "adaqp-fixed", tiny_dataset, tiny_book, "2M-2D",
            _cfg(checkpoint_dir=str(d_crash), transport="sync"),
            fault_plan=FaultPlan.parse(["error:fwd/L0@3"]),
        )
    assert latest_checkpoint_epoch(d_crash) == 3  # epochs 0..2 landed
    resumed = train(
        "adaqp-fixed", tiny_dataset, tiny_book, "2M-2D",
        _cfg(checkpoint_dir=str(d_crash), resume=True),
    )
    assert resumed.start_epoch == 3
    assert resumed.curve_loss == full.curve_loss[3:]
    _assert_states_bitwise_equal(_final_state(d_full), _final_state(d_crash))


def test_double_restore_from_same_checkpoint_dir(
    tmp_path, tiny_dataset, tiny_book
):
    """Satellite (c): restoring twice from one checkpoint set (a crashed
    resume, re-resumed) yields identical runs — restore mutates nothing.
    The second resume runs against a pristine copy because a completed
    resume legitimately extends its own directory with newer epochs."""
    import shutil

    d1 = tmp_path / "a"
    train(
        "adaqp", tiny_dataset, tiny_book, "2M-2D",
        _cfg(epochs=3, checkpoint_dir=str(d1)),
    )
    frozen = _final_state(d1)
    d2 = tmp_path / "b"
    shutil.copytree(d1, d2)
    runs = [
        train(
            "adaqp", tiny_dataset, tiny_book, "2M-2D",
            _cfg(checkpoint_dir=str(d), resume=True),
        )
        for d in (d1, d2)
    ]
    assert runs[0].curve_loss == runs[1].curve_loss
    assert runs[0].start_epoch == runs[1].start_epoch == 3
    # The epoch-3 checkpoint itself was never rewritten differently.
    _assert_states_bitwise_equal(frozen, load_checkpoint(d1, epoch=3))


def test_resume_from_empty_dir_is_a_fresh_start(
    tmp_path, tiny_dataset, tiny_book
):
    clean = train(
        "adaqp-fixed", tiny_dataset, tiny_book, "2M-2D", _cfg(epochs=2)
    )
    resumed = train(
        "adaqp-fixed", tiny_dataset, tiny_book, "2M-2D",
        _cfg(epochs=2, checkpoint_dir=str(tmp_path / "empty"), resume=True),
    )
    assert resumed.start_epoch == 0
    assert resumed.curve_loss == clean.curve_loss


# ----------------------------------------------------------------------
# Restore-time validation
# ----------------------------------------------------------------------
def test_restore_rejects_mismatched_model(tmp_path, tiny_dataset, tiny_book):
    from repro.cluster.cluster import Cluster
    from repro.nn.optim import Adam

    train(
        "adaqp-fixed", tiny_dataset, tiny_book, "2M-2D",
        _cfg(epochs=2, checkpoint_dir=str(tmp_path)),
    )
    state = _final_state(tmp_path)
    with Cluster(tiny_dataset, tiny_book, hidden_dim=16) as cluster:
        opts = [Adam(d.model.parameters()) for d in cluster.devices]
        from repro.cluster.exchange import ExactHaloExchange

        with pytest.raises(ValueError, match="dims"):
            restore_state(state, cluster, opts, ExactHaloExchange())


def test_capture_does_not_alias_live_state(tiny_dataset, tiny_book):
    """A snapshot must stay frozen while training continues past it."""
    from repro.cluster.cluster import Cluster
    from repro.cluster.exchange import ExactHaloExchange
    from repro.nn.optim import Adam

    with Cluster(tiny_dataset, tiny_book, hidden_dim=8) as cluster:
        opts = [Adam(d.model.parameters()) for d in cluster.devices]
        exchange = ExactHaloExchange()
        state = capture_state(cluster, opts, exchange, epoch=1)
        before = {k: v.copy() for k, v in state.model.items()}
        cluster.train_epoch(exchange, 0)
        for opt in opts:
            opt.step()
        for name in before:
            np.testing.assert_array_equal(state.model[name], before[name])


# ----------------------------------------------------------------------
# Huge-graph stores: memmaps stay out of the checkpoint
# ----------------------------------------------------------------------
def _walk_arrays(obj):
    if isinstance(obj, np.ndarray):
        yield obj
    elif isinstance(obj, dict):
        for v in obj.values():
            yield from _walk_arrays(v)
    elif isinstance(obj, (list, tuple)):
        for v in obj:
            yield from _walk_arrays(v)


def test_store_checkpoint_skips_memmaps_and_resumes_bitwise(
    tmp_path, huge_store
):
    """A streaming (memmap-backed) run's checkpoint must not serialize
    store regions — they are reconstructable from ``meta["store_path"]``
    — and resuming from it must continue bitwise."""
    ds, book = huge_store.dataset(), huge_store.book()
    setting = f"{huge_store.num_parts}M-1D"
    d_full, d_split = tmp_path / "full", tmp_path / "split"
    full = train("adaqp", ds, book, setting, _cfg(checkpoint_dir=str(d_full)))
    part1 = train(
        "adaqp", ds, book, setting, _cfg(epochs=3, checkpoint_dir=str(d_split))
    )
    part2 = train(
        "adaqp", ds, book, setting, _cfg(checkpoint_dir=str(d_split), resume=True)
    )
    assert part2.start_epoch == 3
    assert part1.curve_loss + part2.curve_loss == full.curve_loss
    assert part1.wire_bytes_total + part2.wire_bytes_total == full.wire_bytes_total
    _assert_states_bitwise_equal(_final_state(d_full), _final_state(d_split))

    state = _final_state(d_split)
    assert state.meta.get("store_path") == str(huge_store.path)
    for arr in _walk_arrays(
        {"model": state.model, "optimizer": state.optimizer,
         "exchange": state.exchange, "assigner": state.assigner}
    ):
        assert not isinstance(arr, np.memmap)
    # The checkpoint must stay model-sized: serializing even one
    # device's store regions would dwarf the store-free state.
    ckpt_bytes = max(p.stat().st_size for p in d_split.glob("epoch-*/state.pkl"))
    assert ckpt_bytes < huge_store.materialized_bytes() // huge_store.num_parts
