"""Halo exchanges: exact routing, quantized fidelity, bit providers."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.exchange import (
    ExactHaloExchange,
    FixedBitProvider,
    QuantizedHaloExchange,
    UniformRandomBitProvider,
)
from repro.comm.transport import SyncTransport as Transport
from repro.graph.partition.api import partition_graph


@pytest.fixture(scope="module")
def cluster(tiny_dataset):
    book = partition_graph(tiny_dataset.graph, 3, method="metis", seed=0)
    return Cluster(
        tiny_dataset, book, model_kind="gcn", hidden_dim=8, num_layers=2,
        dropout=0.0, seed=0,
    )


def _features(cluster):
    return [dev.features for dev in cluster.devices]


def test_exact_exchange_delivers_true_values(cluster):
    transport = Transport(cluster.num_devices)
    h = _features(cluster)
    halos = ExactHaloExchange().exchange_embeddings(0, cluster.devices, transport, h)
    ds = cluster.dataset
    for dev, halo in zip(cluster.devices, halos):
        expected = ds.features[dev.part.halo_global]
        assert np.allclose(halo, expected)


def test_exact_gradient_routing_accumulates(cluster):
    transport = Transport(cluster.num_devices)
    d_halo = [
        np.ones((dev.part.n_halo, 4), dtype=np.float32) * (dev.rank + 1)
        for dev in cluster.devices
    ]
    d_own = [np.zeros((dev.part.n_owned, 4), dtype=np.float32) for dev in cluster.devices]
    ExactHaloExchange().exchange_gradients(0, cluster.devices, transport, d_halo, d_own)
    for dev in cluster.devices:
        # Every boundary row got contributions from each peer whose halo
        # contains it: value = sum of (peer_rank + 1).
        expected = np.zeros((dev.part.n_owned,), dtype=np.float32)
        for q, rows in dev.part.send_map.items():
            expected_rows = np.zeros_like(expected)
            expected_rows[rows] = q + 1
            expected += expected_rows
        assert np.allclose(d_own[dev.rank][:, 0], expected)


def test_quantized_exchange_approximates_exact(cluster):
    transport = Transport(cluster.num_devices)
    h = _features(cluster)
    exchange = QuantizedHaloExchange(FixedBitProvider(8), np.random.default_rng(0))
    halos = exchange.exchange_embeddings(0, cluster.devices, transport, h)
    ds = cluster.dataset
    for dev, halo in zip(cluster.devices, halos):
        expected = ds.features[dev.part.halo_global]
        if halo.size == 0:
            continue
        scale = (expected.max(axis=1) - expected.min(axis=1)) / 255.0
        err = np.abs(halo - expected)
        assert (err <= scale[:, None] + 1e-5).all()


def test_quantized_exchange_wire_bytes_smaller(cluster):
    t_exact, t_quant = Transport(cluster.num_devices), Transport(cluster.num_devices)
    h = _features(cluster)
    ExactHaloExchange().exchange_embeddings(0, cluster.devices, t_exact, h)
    QuantizedHaloExchange(FixedBitProvider(2), np.random.default_rng(0)).exchange_embeddings(
        0, cluster.devices, t_quant, h
    )
    assert t_quant.total_bytes() < 0.3 * t_exact.total_bytes()


def test_tracer_sees_every_transfer(cluster):
    class Recorder:
        def __init__(self):
            self.calls = []

        def observe(self, phase, layer, src, dst, rows):
            self.calls.append((phase, layer, src, dst, rows.shape))

    rec = Recorder()
    transport = Transport(cluster.num_devices)
    exchange = QuantizedHaloExchange(
        FixedBitProvider(4), np.random.default_rng(0), tracer=rec
    )
    exchange.exchange_embeddings(0, cluster.devices, transport, _features(cluster))
    expected_transfers = sum(len(d.part.send_map) for d in cluster.devices)
    assert len(rec.calls) == expected_transfers
    assert all(c[0] == "fwd" and c[1] == 0 for c in rec.calls)


def test_fixed_bit_provider():
    p = FixedBitProvider(4)
    assert np.all(p.bits_for(0, "fwd", 0, 1, 5) == 4)
    with pytest.raises(ValueError):
        FixedBitProvider(3)


def test_uniform_provider_stable_within_period():
    p = UniformRandomBitProvider(np.random.default_rng(0), period=10)
    p.set_epoch(0)
    a = p.bits_for(0, "fwd", 0, 1, 50).copy()
    p.set_epoch(5)
    b = p.bits_for(0, "fwd", 0, 1, 50)
    assert np.array_equal(a, b)
    p.set_epoch(10)  # period boundary: resample
    c = p.bits_for(0, "fwd", 0, 1, 50)
    assert not np.array_equal(a, c)


def test_uniform_provider_uses_all_choices():
    p = UniformRandomBitProvider(np.random.default_rng(0))
    bits = p.bits_for(0, "fwd", 0, 1, 300)
    assert set(np.unique(bits)) == {2, 4, 8}


def test_uniform_provider_validation():
    with pytest.raises(ValueError):
        UniformRandomBitProvider(np.random.default_rng(0), period=0)
    with pytest.raises(ValueError):
        UniformRandomBitProvider(np.random.default_rng(0), choices=(3,))
