"""EpochRecord / PhaseRecord accounting structures."""

import numpy as np
import pytest

from repro.cluster.records import EpochRecord, PhaseRecord


def _phase(layer=0, phase="fwd", n=3):
    bm = np.arange(n * n, dtype=np.int64).reshape(n, n)
    np.fill_diagonal(bm, 0)
    return PhaseRecord(
        layer=layer,
        phase=phase,
        bytes_matrix=bm,
        quant_send_bytes=np.full(n, 10.0),
        quant_recv_bytes=np.full(n, 6.0),
        agg_flops=np.full(n, 100.0),
        agg_flops_central=np.full(n, 40.0),
        dense_flops=np.full(n, 200.0),
        dense_flops_central=np.full(n, 80.0),
    )


def test_phase_derived_quantities():
    p = _phase()
    assert p.num_devices == 3
    assert np.array_equal(p.quant_float_bytes, np.full(3, 16.0))
    assert np.array_equal(p.agg_flops_marginal, np.full(3, 60.0))
    assert np.array_equal(p.dense_flops_marginal, np.full(3, 120.0))


def test_epoch_totals():
    rec = EpochRecord(loss=1.5, phases=[_phase(0, "fwd"), _phase(0, "bwd")])
    per_phase = int(_phase().bytes_matrix.sum())
    assert rec.total_wire_bytes() == 2 * per_phase
    assert rec.bytes_by_pair().sum() == 2 * per_phase
    assert rec.bytes_by_pair()[1, 2] == 2 * 5


def test_bytes_by_pair_requires_phases():
    with pytest.raises(ValueError):
        EpochRecord(loss=0.0).bytes_by_pair()


def test_empty_epoch_zero_bytes():
    assert EpochRecord(loss=0.0).total_wire_bytes() == 0


# ---------------------------------------------------------------------------
# Timeline summaries and capped retention
# ---------------------------------------------------------------------------
def _timeline(layer=0, phase="fwd", total=100, overlapped=100, wait=0.0):
    from repro.cluster.records import StepTimeline

    return StepTimeline(
        layer=layer,
        phase=phase,
        quantize_s=0.1,
        comm_s=0.0,
        central_s=0.3,
        dequantize_s=0.2,
        marginal_s=0.4,
        comp_full_s=0.7,
        overlapped_bytes=overlapped,
        total_bytes=total,
        measured=True,
        worker_wait_s=wait,
    )


def test_timeline_summary_accumulates_and_merges():
    from repro.cluster.records import TimelineSummary

    a, b = TimelineSummary(), TimelineSummary()
    a.add(_timeline(total=100, overlapped=60, wait=0.05))
    a.add(_timeline(total=100, overlapped=100))
    b.add(_timeline(total=50, overlapped=0))
    b.merge(a)
    assert b.steps == 3
    assert b.total_bytes == 250
    assert b.overlapped_bytes == 160
    assert b.hidden_byte_fraction == pytest.approx(160 / 250)
    assert b.worker_wait_s == pytest.approx(0.05)
    assert b.central_share == pytest.approx(0.3 / 0.7)
    assert TimelineSummary().hidden_byte_fraction == 0.0
    assert TimelineSummary().central_share == 0.0


def test_add_timeline_caps_list_but_not_accounting():
    rec = EpochRecord(loss=0.0)
    for layer in range(5):
        rec.add_timeline(_timeline(layer=layer), keep_last=2)
    assert [t.layer for t in rec.timelines] == [3, 4]
    assert rec.timeline_summary.steps == 5
    assert rec.timeline_summary.total_bytes == 500
    assert rec.hidden_byte_fraction() == 1.0


def test_hidden_byte_fraction_falls_back_to_raw_timelines():
    # Timelines appended directly (not via add_timeline) still count.
    rec = EpochRecord(loss=0.0)
    rec.timelines.append(_timeline(total=80, overlapped=40))
    assert rec.hidden_byte_fraction() == 0.5
