"""EpochRecord / PhaseRecord accounting structures."""

import numpy as np
import pytest

from repro.cluster.records import EpochRecord, PhaseRecord


def _phase(layer=0, phase="fwd", n=3):
    bm = np.arange(n * n, dtype=np.int64).reshape(n, n)
    np.fill_diagonal(bm, 0)
    return PhaseRecord(
        layer=layer,
        phase=phase,
        bytes_matrix=bm,
        quant_send_bytes=np.full(n, 10.0),
        quant_recv_bytes=np.full(n, 6.0),
        agg_flops=np.full(n, 100.0),
        agg_flops_central=np.full(n, 40.0),
        dense_flops=np.full(n, 200.0),
        dense_flops_central=np.full(n, 80.0),
    )


def test_phase_derived_quantities():
    p = _phase()
    assert p.num_devices == 3
    assert np.array_equal(p.quant_float_bytes, np.full(3, 16.0))
    assert np.array_equal(p.agg_flops_marginal, np.full(3, 60.0))
    assert np.array_equal(p.dense_flops_marginal, np.full(3, 120.0))


def test_epoch_totals():
    rec = EpochRecord(loss=1.5, phases=[_phase(0, "fwd"), _phase(0, "bwd")])
    per_phase = int(_phase().bytes_matrix.sum())
    assert rec.total_wire_bytes() == 2 * per_phase
    assert rec.bytes_by_pair().sum() == 2 * per_phase
    assert rec.bytes_by_pair()[1, 2] == 2 * 5


def test_bytes_by_pair_requires_phases():
    with pytest.raises(ValueError):
        EpochRecord(loss=0.0).bytes_by_pair()


def test_empty_epoch_zero_bytes():
    assert EpochRecord(loss=0.0).total_wire_bytes() == 0
