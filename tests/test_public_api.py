"""Public API surface and integration sanity."""

import numpy as np

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_quickstart_flow():
    """The README's quickstart, end to end."""
    ds = repro.load_dataset("yelp", scale="tiny", seed=0)
    book = repro.partition_graph(ds.graph, 2, method="metis", seed=0)
    cfg = repro.RunConfig(epochs=3, hidden_dim=8, eval_every=1, dropout=0.0)
    result = repro.train("adaqp", ds, book, "2M-1D", cfg)
    assert result.epochs == 3
    assert np.isfinite(result.final_val)
    assert result.system == "adaqp"
    assert result.dataset == "yelp-tiny"
    assert result.topology == "2M-1D"


def test_systems_tuple():
    assert "adaqp" in repro.SYSTEMS and "vanilla" in repro.SYSTEMS


def test_available_datasets():
    assert len(repro.available_datasets("tiny")) == 4
