"""PartitionBook / LocalPartition: the structural heart of the runtime.

The key property test reconstructs the full-graph adjacency from the local
partitions — if that holds, aggregation over partitions is exactly
aggregation over the full graph.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.graph import Graph
from repro.graph.partition.book import PartitionBook, build_local_partitions


def test_book_validation():
    with pytest.raises(ValueError, match="out of range"):
        PartitionBook(part_of=np.array([0, 3]), num_parts=2)
    with pytest.raises(ValueError, match="own no nodes"):
        PartitionBook(part_of=np.array([0, 0]), num_parts=2)
    with pytest.raises(ValueError, match="empty"):
        PartitionBook(part_of=np.zeros(0, dtype=np.int64), num_parts=1)


def test_owned_and_sizes():
    book = PartitionBook(part_of=np.array([0, 1, 0, 1, 1]), num_parts=2)
    assert book.owned(0).tolist() == [0, 2]
    assert book.sizes().tolist() == [2, 3]


def test_book_graph_size_mismatch(path_graph):
    book = PartitionBook(part_of=np.array([0, 1]), num_parts=2)
    with pytest.raises(ValueError, match="covers"):
        build_local_partitions(path_graph, book)


def test_path_graph_partition_structure(path_graph):
    # Partition 0-1-2 | 3-4: boundary at 2-3.
    book = PartitionBook(part_of=np.array([0, 0, 0, 1, 1]), num_parts=2)
    parts = build_local_partitions(path_graph, book)
    p0, p1 = parts
    assert p0.n_owned == 3 and p1.n_owned == 2
    assert p0.halo_global.tolist() == [3]
    assert p1.halo_global.tolist() == [2]
    # Node 2 is p0's only marginal node; 0 and 1 are central.
    assert p0.marginal_mask.tolist() == [False, False, True]
    assert p1.marginal_mask.tolist() == [True, False]
    # Send/recv alignment.
    assert p0.send_map[1].tolist() == [2]  # local index of global node 2
    assert p1.recv_map[0].tolist() == [0]


def test_send_recv_alignment(tiny_dataset, tiny_parts):
    """p.send_map[q] rows carry exactly the globals in q's halo segment."""
    parts = tiny_parts
    for p in parts:
        for q_rank, rows in p.send_map.items():
            q = parts[q_rank]
            sent_globals = p.owned_global[rows]
            expected = q.halo_global[q.recv_map[p.part_id]]
            assert np.array_equal(sent_globals, expected)


def test_halo_slots_covered_once(tiny_parts):
    for part in tiny_parts:
        part.validate()  # includes exactly-once coverage


def test_peers_symmetry(tiny_parts):
    for p in tiny_parts:
        for q in p.peers_in():
            assert p.part_id in tiny_parts[q].peers_out()


def test_marginal_matches_direct_check(tiny_dataset, tiny_book, tiny_parts):
    graph, book = tiny_dataset.graph, tiny_book
    for part in tiny_parts:
        for local_idx in np.random.default_rng(0).choice(
            part.n_owned, size=25, replace=False
        ):
            node = part.owned_global[local_idx]
            has_remote = any(
                book.part_of[nbr] != part.part_id for nbr in graph.neighbors(node)
            )
            assert bool(part.marginal_mask[local_idx]) == has_remote


def test_single_partition_has_no_halo(tiny_dataset, single_part_book):
    parts = build_local_partitions(tiny_dataset.graph, single_part_book)
    assert len(parts) == 1
    assert parts[0].n_halo == 0
    assert not parts[0].marginal_mask.any()
    assert parts[0].send_map == {} and parts[0].recv_map == {}


@st.composite
def graph_and_parts(draw):
    n = draw(st.integers(min_value=4, max_value=24))
    m = draw(st.integers(min_value=n, max_value=4 * n))
    gen = np.random.default_rng(draw(st.integers(0, 2**31)))
    src = gen.integers(0, n, m)
    dst = gen.integers(0, n, m)
    k = draw(st.integers(min_value=1, max_value=min(4, n)))
    parts = gen.integers(0, k, n)
    parts[:k] = np.arange(k)  # guarantee non-empty parts
    return Graph.from_edges(src, dst, n), PartitionBook(
        part_of=parts.astype(np.int32), num_parts=k
    )


@given(graph_and_parts())
@settings(max_examples=40, deadline=None)
def test_property_local_parts_reconstruct_global_adjacency(case):
    """Sum of per-partition adjacencies (mapped back to global ids) equals
    the full adjacency restricted to each partition's rows."""
    graph, book = case
    parts = build_local_partitions(graph, book)
    full = graph.to_scipy()
    recon = sp.lil_matrix((graph.num_nodes, graph.num_nodes))
    for part in parts:
        coo = part.adj.tocoo()
        rows_g = part.owned_global[coo.row]
        col_ids = np.where(
            coo.col < part.n_owned,
            part.owned_global[np.minimum(coo.col, max(part.n_owned - 1, 0))],
            part.halo_global[np.maximum(coo.col - part.n_owned, 0)]
            if part.n_halo
            else 0,
        )
        for r, c in zip(rows_g, col_ids):
            recon[r, c] = 1.0
    assert (recon.tocsr() != full).nnz == 0
