"""Synthetic graph/feature/label generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    CommunityGraphConfig,
    generate_community_graph,
    generate_features_and_labels,
)


def _cfg(**kwargs):
    base = dict(
        num_nodes=600,
        avg_degree=10.0,
        num_communities=6,
        homophily=0.85,
        neighbor_locality=0.9,
    )
    base.update(kwargs)
    return CommunityGraphConfig(**base)


def test_config_validation():
    with pytest.raises(ValueError):
        _cfg(homophily=1.5)
    with pytest.raises(ValueError):
        _cfg(num_nodes=-1)
    with pytest.raises(ValueError):
        _cfg(num_communities=601)


def test_graph_size_and_degree(rng):
    g, comm = generate_community_graph(_cfg(), np.random.default_rng(0))
    assert g.num_nodes == 600
    realized = 2 * g.num_edges / g.num_nodes
    assert 6.0 < realized < 12.0  # near target after dedup losses
    assert comm.shape == (600,)
    assert set(np.unique(comm)) == set(range(6))


def test_determinism():
    g1, c1 = generate_community_graph(_cfg(), np.random.default_rng(3))
    g2, c2 = generate_community_graph(_cfg(), np.random.default_rng(3))
    assert np.array_equal(g1.indices, g2.indices)
    assert np.array_equal(c1, c2)


def test_homophily_controls_intra_community_edges():
    def intra_fraction(h):
        g, comm = generate_community_graph(
            _cfg(homophily=h), np.random.default_rng(1)
        )
        src, dst = g.edge_array()
        return float((comm[src] == comm[dst]).mean())

    assert intra_fraction(0.95) > intra_fraction(0.5) + 0.15


def test_degree_skew():
    g, _ = generate_community_graph(
        _cfg(num_nodes=2000, degree_exponent=2.0), np.random.default_rng(2)
    )
    deg = g.degrees
    assert deg.max() > 4 * np.median(deg)  # heavy tail produces hubs


def test_community_size_skew_keeps_all_nonempty():
    g, comm = generate_community_graph(
        _cfg(community_size_skew=1.5), np.random.default_rng(4)
    )
    assert set(np.unique(comm)) == set(range(6))


def test_features_single_label(rng):
    comm = np.repeat(np.arange(4), 50)
    feats, labels = generate_features_and_labels(
        comm, num_features=16, num_classes=4, multilabel=False,
        rng=np.random.default_rng(0), label_noise=0.0,
    )
    assert feats.shape == (200, 16) and feats.dtype == np.float32
    assert labels.shape == (200,)
    assert np.array_equal(labels, comm)  # no noise => labels are communities


def test_label_noise_fraction():
    comm = np.zeros(5000, dtype=np.int64)
    _, labels = generate_features_and_labels(
        comm, num_features=4, num_classes=10, multilabel=False,
        rng=np.random.default_rng(0), label_noise=0.3,
    )
    flipped = float((labels != 0).mean())
    assert 0.2 < flipped < 0.35  # 0.3 * (9/10) expected


def test_multilabel_structure():
    comm = np.repeat(np.arange(6), 30)
    feats, labels = generate_features_and_labels(
        comm, num_features=8, num_classes=6, multilabel=True,
        rng=np.random.default_rng(0), label_noise=0.0,
    )
    assert labels.shape == (180, 6)
    # Primary label always set; same community => same label set.
    assert (labels[np.arange(180), comm] == 1.0).all()
    first = labels[comm == 2][0]
    assert (labels[comm == 2] == first).all()


def test_features_carry_class_signal():
    comm = np.repeat(np.arange(2), 300)
    feats, labels = generate_features_and_labels(
        comm, num_features=32, num_classes=2, multilabel=False,
        rng=np.random.default_rng(0), label_noise=0.0, feature_noise=0.5,
        fine_group=1,
    )
    mu0 = feats[labels == 0].mean(axis=0)
    mu1 = feats[labels == 1].mean(axis=0)
    assert np.linalg.norm(mu0 - mu1) > 1.0  # distinct centroids


def test_fine_structure_shrinks_within_group_separation():
    comm = np.repeat(np.arange(4), 200)

    def separation(fine_scale):
        feats, labels = generate_features_and_labels(
            comm, num_features=32, num_classes=4, multilabel=False,
            rng=np.random.default_rng(0), label_noise=0.0, feature_noise=0.0,
            fine_group=2, fine_scale=fine_scale,
        )
        mus = [feats[labels == c].mean(axis=0) for c in range(4)]
        within = np.linalg.norm(mus[0] - mus[1])  # same coarse group
        across = np.linalg.norm(mus[0] - mus[2])  # different groups
        return within, across

    within, across = separation(0.3)
    assert within < across  # fine pairs are closer than cross-group pairs


def test_num_classes_must_cover_communities():
    with pytest.raises(ValueError, match="cover"):
        generate_features_and_labels(
            np.array([0, 5]), num_features=4, num_classes=3, multilabel=False,
            rng=np.random.default_rng(0),
        )
