"""Graph (CSR) structure: construction, invariants, queries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.graph import Graph


def test_from_edges_basic(path_graph):
    assert path_graph.num_nodes == 5
    assert path_graph.num_edges == 4
    assert path_graph.neighbors(0).tolist() == [1]
    assert path_graph.neighbors(1).tolist() == [0, 2]


def test_self_loops_dropped():
    g = Graph.from_edges(np.array([0, 1, 2]), np.array([0, 2, 2]), 3)
    assert g.num_edges == 1
    assert not g.has_edge(0, 0)


def test_parallel_edges_deduplicated():
    g = Graph.from_edges(np.array([0, 0, 1]), np.array([1, 1, 0]), 2)
    assert g.num_edges == 1


def test_degrees(path_graph):
    assert path_graph.degrees.tolist() == [1, 2, 2, 2, 1]


def test_has_edge(path_graph):
    assert path_graph.has_edge(2, 3)
    assert not path_graph.has_edge(0, 4)


def test_to_scipy_symmetric(path_graph):
    mat = path_graph.to_scipy()
    assert (mat != mat.T).nnz == 0
    assert mat.nnz == 2 * path_graph.num_edges


def test_from_scipy_roundtrip(path_graph):
    g2 = Graph.from_scipy(path_graph.to_scipy())
    assert np.array_equal(g2.indptr, path_graph.indptr)
    assert np.array_equal(g2.indices, path_graph.indices)


def test_edge_array_covers_both_directions(path_graph):
    src, dst = path_graph.edge_array()
    assert src.size == 2 * path_graph.num_edges
    pairs = set(zip(src.tolist(), dst.tolist()))
    assert (0, 1) in pairs and (1, 0) in pairs


def test_out_of_range_edges_rejected():
    with pytest.raises(ValueError, match="out of range"):
        Graph.from_edges(np.array([0]), np.array([5]), 3)


def test_mismatched_edge_arrays_rejected():
    with pytest.raises(ValueError, match="same shape"):
        Graph.from_edges(np.array([0, 1]), np.array([1]), 3)


def test_invalid_indptr_rejected():
    with pytest.raises(ValueError):
        Graph(indptr=np.array([1, 2], dtype=np.int64), indices=np.array([0], dtype=np.int64))


def test_nonsquare_scipy_rejected():
    import scipy.sparse as sp

    with pytest.raises(ValueError, match="square"):
        Graph.from_scipy(sp.csr_matrix((2, 3)))


def test_empty_graph():
    g = Graph.from_edges(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), 4)
    assert g.num_nodes == 4
    assert g.num_edges == 0
    assert g.degrees.tolist() == [0, 0, 0, 0]


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=2, max_value=30))
    m = draw(st.integers(min_value=0, max_value=80))
    src = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), min_size=m, max_size=m)
    )
    dst = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), min_size=m, max_size=m)
    )
    return n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64)


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_property_symmetry_and_sortedness(case):
    n, src, dst = case
    g = Graph.from_edges(src, dst, n)
    # Rows sorted, no self loops, symmetric.
    for v in range(n):
        nbrs = g.neighbors(v)
        assert np.all(np.diff(nbrs) > 0)  # sorted + unique
        assert v not in nbrs
        for u in nbrs:
            assert g.has_edge(int(u), v)


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_property_edge_count_matches_unique_undirected_pairs(case):
    n, src, dst = case
    g = Graph.from_edges(src, dst, n)
    keep = src != dst
    pairs = {
        (min(int(s), int(d)), max(int(s), int(d)))
        for s, d in zip(src[keep], dst[keep])
    }
    assert g.num_edges == len(pairs)
