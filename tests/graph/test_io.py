"""Persistence round trips for graphs, datasets and partition books."""

import numpy as np
import pytest

from repro.graph.io import (
    load_dataset_file,
    load_graph,
    load_partition_book,
    save_dataset,
    save_graph,
    save_partition_book,
)


def test_graph_roundtrip(tmp_path, path_graph):
    p = tmp_path / "g.npz"
    save_graph(path_graph, p)
    g2 = load_graph(p)
    assert np.array_equal(g2.indptr, path_graph.indptr)
    assert np.array_equal(g2.indices, path_graph.indices)


def test_dataset_roundtrip(tmp_path, tiny_dataset):
    p = tmp_path / "ds.npz"
    save_dataset(tiny_dataset, p)
    ds2 = load_dataset_file(p)
    assert ds2.spec == tiny_dataset.spec
    assert np.array_equal(ds2.features, tiny_dataset.features)
    assert np.array_equal(ds2.labels, tiny_dataset.labels)
    assert np.array_equal(ds2.train_mask, tiny_dataset.train_mask)
    assert ds2.graph.num_edges == tiny_dataset.graph.num_edges


def test_partition_book_roundtrip(tmp_path, tiny_book):
    p = tmp_path / "book.npz"
    save_partition_book(tiny_book, p)
    book2 = load_partition_book(p)
    assert book2.num_parts == tiny_book.num_parts
    assert np.array_equal(book2.part_of, tiny_book.part_of)


def test_loaded_dataset_trains(tmp_path, tiny_dataset):
    """A persisted dataset is fully usable for training."""
    from repro.core.config import RunConfig
    from repro.core.trainer import train
    from repro.graph.partition.api import partition_graph

    p = tmp_path / "ds.npz"
    save_dataset(tiny_dataset, p)
    ds2 = load_dataset_file(p)
    book = partition_graph(ds2.graph, 2, method="metis", seed=0)
    result = train("vanilla", ds2, book, "2M-1D",
                   RunConfig(epochs=2, hidden_dim=8, eval_every=1))
    assert np.isfinite(result.final_val)


def test_version_check(tmp_path):
    bad = tmp_path / "bad.npz"
    np.savez(bad, format_version=99, indptr=np.array([0]), indices=np.array([], dtype=np.int64))
    with pytest.raises(ValueError, match="format version"):
        load_graph(bad)
