"""Persistence round trips for graphs, datasets and partition books."""

import numpy as np
import pytest

from repro.graph.io import (
    load_dataset_file,
    load_graph,
    load_partition_book,
    save_dataset,
    save_graph,
    save_partition_book,
)


def test_graph_roundtrip(tmp_path, path_graph):
    p = tmp_path / "g.npz"
    save_graph(path_graph, p)
    g2 = load_graph(p)
    assert np.array_equal(g2.indptr, path_graph.indptr)
    assert np.array_equal(g2.indices, path_graph.indices)


def test_dataset_roundtrip(tmp_path, tiny_dataset):
    p = tmp_path / "ds.npz"
    save_dataset(tiny_dataset, p)
    ds2 = load_dataset_file(p)
    assert ds2.spec == tiny_dataset.spec
    assert np.array_equal(ds2.features, tiny_dataset.features)
    assert np.array_equal(ds2.labels, tiny_dataset.labels)
    assert np.array_equal(ds2.train_mask, tiny_dataset.train_mask)
    assert ds2.graph.num_edges == tiny_dataset.graph.num_edges


def test_partition_book_roundtrip(tmp_path, tiny_book):
    p = tmp_path / "book.npz"
    save_partition_book(tiny_book, p)
    book2 = load_partition_book(p)
    assert book2.num_parts == tiny_book.num_parts
    assert np.array_equal(book2.part_of, tiny_book.part_of)


def test_loaded_dataset_trains(tmp_path, tiny_dataset):
    """A persisted dataset is fully usable for training."""
    from repro.core.config import RunConfig
    from repro.core.trainer import train
    from repro.graph.partition.api import partition_graph

    p = tmp_path / "ds.npz"
    save_dataset(tiny_dataset, p)
    ds2 = load_dataset_file(p)
    book = partition_graph(ds2.graph, 2, method="metis", seed=0)
    result = train("vanilla", ds2, book, "2M-1D",
                   RunConfig(epochs=2, hidden_dim=8, eval_every=1))
    assert np.isfinite(result.final_val)


def test_version_check(tmp_path):
    bad = tmp_path / "bad.npz"
    np.savez(bad, format_version=99, indptr=np.array([0]), indices=np.array([], dtype=np.int64))
    with pytest.raises(ValueError, match="format version"):
        load_graph(bad)


# ----------------------------------------------------------------------
# Partition-store error paths (huge-graph mode)
# ----------------------------------------------------------------------
def _store_copy(store, tmp_path):
    import shutil

    dst = tmp_path / "copy"
    shutil.copytree(store.path, dst)
    return dst


def test_store_open_rejects_version_mismatch(huge_store, tmp_path):
    import json as _json

    from repro.graph.io import PartitionStore

    dst = _store_copy(huge_store, tmp_path)
    header = _json.loads((dst / "header.json").read_text())
    header["version"] = 99
    (dst / "header.json").write_text(_json.dumps(header))
    with pytest.raises(ValueError, match="version 99"):
        PartitionStore.open(dst)


def test_store_open_rejects_truncated_file(huge_store, tmp_path):
    from repro.graph.io import PartitionStore

    dst = _store_copy(huge_store, tmp_path)
    part_file = dst / "part0000.bin"
    part_file.write_bytes(part_file.read_bytes()[:128])
    with pytest.raises(ValueError, match="truncated"):
        PartitionStore.open(dst)


def test_store_open_rejects_missing_and_corrupt_header(huge_store, tmp_path):
    from repro.graph.io import PartitionStore

    with pytest.raises(ValueError, match="missing"):
        PartitionStore.open(tmp_path / "nowhere")
    dst = _store_copy(huge_store, tmp_path)
    (dst / "header.json").write_text("{not json")
    with pytest.raises(ValueError, match="corrupt"):
        PartitionStore.open(dst)


def test_store_region_unknown_name_raises(huge_store):
    with pytest.raises(KeyError, match="no region"):
        huge_store.region(0, "no-such-region")


def test_partition_book_roundtrip_non_contiguous(tmp_path):
    """A book whose parts own interleaved (non-contiguous) node ids must
    survive the save/load round trip exactly — the store's contiguous
    numbering is a property of the store, not of the book format."""
    from repro.graph.partition.book import PartitionBook

    gen = np.random.default_rng(3)
    part_of = gen.integers(0, 3, 101).astype(np.int64)
    book = PartitionBook(part_of=part_of, num_parts=3)
    p = tmp_path / "scattered.npz"
    save_partition_book(book, p)
    book2 = load_partition_book(p)
    assert book2.num_parts == 3
    assert np.array_equal(book2.part_of, part_of)
    for part in range(3):
        assert np.array_equal(book2.owned(part), np.flatnonzero(part_of == part))
