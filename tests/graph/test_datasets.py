"""Dataset catalog: integrity, determinism, splits."""

import numpy as np
import pytest

from repro.graph.datasets import (
    DATASET_CATALOG,
    available_datasets,
    load_dataset,
)


def test_catalog_has_all_four_paper_datasets():
    for scale in ("tiny", "small"):
        assert available_datasets(scale) == [
            "amazonproducts",
            "ogbn-products",
            "reddit",
            "yelp",
        ]


def test_density_ordering_matches_paper():
    # Reddit densest, Yelp sparsest (Table 3's shape).
    tiny = DATASET_CATALOG["tiny"]
    assert tiny["reddit"].avg_degree > tiny["amazonproducts"].avg_degree
    assert tiny["amazonproducts"].avg_degree > tiny["ogbn-products"].avg_degree
    assert tiny["ogbn-products"].avg_degree > tiny["yelp"].avg_degree


def test_task_types_match_paper():
    tiny = DATASET_CATALOG["tiny"]
    assert not tiny["reddit"].multilabel
    assert not tiny["ogbn-products"].multilabel
    assert tiny["yelp"].multilabel
    assert tiny["amazonproducts"].multilabel


def test_load_reddit_shapes(tiny_dataset):
    ds = load_dataset("reddit", scale="tiny", seed=0)
    assert ds.num_nodes == ds.graph.num_nodes == 2048
    assert ds.features.shape == (2048, 64)
    assert ds.features.dtype == np.float32
    assert ds.labels.shape == (2048,)


def test_multilabel_shapes(tiny_dataset):
    assert tiny_dataset.multilabel
    assert tiny_dataset.labels.shape == (tiny_dataset.num_nodes, tiny_dataset.num_classes)


def test_splits_partition_nodes(tiny_dataset):
    total = (
        tiny_dataset.train_mask.astype(int)
        + tiny_dataset.val_mask.astype(int)
        + tiny_dataset.test_mask.astype(int)
    )
    assert (total == 1).all()
    frac = tiny_dataset.train_mask.mean()
    assert 0.55 < frac < 0.65


def test_determinism_same_seed():
    a = load_dataset("yelp", scale="tiny", seed=3)
    b = load_dataset("yelp", scale="tiny", seed=3)
    assert np.array_equal(a.features, b.features)
    assert np.array_equal(a.graph.indices, b.graph.indices)
    assert np.array_equal(a.train_mask, b.train_mask)


def test_different_seeds_differ():
    a = load_dataset("yelp", scale="tiny", seed=0)
    b = load_dataset("yelp", scale="tiny", seed=1)
    assert not np.array_equal(a.features, b.features)


def test_unknown_name_and_scale_rejected():
    with pytest.raises(ValueError, match="unknown dataset"):
        load_dataset("imagenet")
    with pytest.raises(ValueError, match="unknown scale"):
        load_dataset("reddit", scale="huge")


def test_summary_row(tiny_dataset):
    row = tiny_dataset.summary_row()
    assert row[0] == "yelp-tiny"
    assert row[5] == "multi-label"
