"""Partitioners: balance, coverage, quality ordering and the dispatcher."""

import numpy as np
import pytest

from repro.graph.partition.api import partition_graph
from repro.graph.partition.metis_like import metis_like_partition
from repro.graph.partition.quality import (
    balance,
    edge_cut,
    pairwise_boundary_counts,
    remote_neighbor_ratio,
)
from repro.graph.partition.simple import (
    bfs_partition,
    random_partition,
    spectral_partition,
)


@pytest.mark.parametrize("method", ["metis", "random", "bfs", "spectral"])
def test_all_methods_cover_all_nodes(tiny_dataset, method):
    book = partition_graph(tiny_dataset.graph, 4, method=method, seed=0)
    assert book.num_parts == 4
    assert book.part_of.size == tiny_dataset.num_nodes
    assert (book.sizes() > 0).all()


@pytest.mark.parametrize("method", ["metis", "random", "bfs", "spectral"])
def test_balance_bounds(tiny_dataset, method):
    book = partition_graph(tiny_dataset.graph, 4, method=method, seed=0)
    assert balance(book) < 1.25


def test_metis_beats_random_on_cut(tiny_dataset):
    g = tiny_dataset.graph
    cut_metis = edge_cut(g, metis_like_partition(g, 4, seed=0))
    cut_random = edge_cut(g, random_partition(g, 4, seed=0))
    assert cut_metis < 0.5 * cut_random


def test_metis_determinism(tiny_dataset):
    a = metis_like_partition(tiny_dataset.graph, 4, seed=5)
    b = metis_like_partition(tiny_dataset.graph, 4, seed=5)
    assert np.array_equal(a.part_of, b.part_of)


def test_metis_single_part(path_graph):
    book = metis_like_partition(path_graph, 1)
    assert book.num_parts == 1
    assert (book.part_of == 0).all()


def test_metis_more_parts_than_nodes_rejected(path_graph):
    with pytest.raises(ValueError, match="cannot split"):
        metis_like_partition(path_graph, 10)


def test_metis_on_tiny_path(path_graph):
    book = metis_like_partition(path_graph, 2, seed=0)
    # A path of 5 nodes split in 2 should cut exactly one edge.
    assert edge_cut(path_graph, book) <= 2


def test_bfs_partition_locality(tiny_dataset):
    g = tiny_dataset.graph
    cut_bfs = edge_cut(g, bfs_partition(g, 4, seed=0))
    cut_random = edge_cut(g, random_partition(g, 4, seed=0))
    assert cut_bfs < cut_random


def test_spectral_partition_small_graph(small_graph):
    book = spectral_partition(small_graph, 3, seed=0)
    assert (book.sizes() > 0).all()


def test_dispatcher_rejects_unknown_method(tiny_dataset):
    with pytest.raises(ValueError, match="method"):
        partition_graph(tiny_dataset.graph, 2, method="kernighan")


def test_remote_neighbor_ratio_monotone_in_parts(tiny_single_label_dataset):
    g = tiny_single_label_dataset.graph
    r2 = remote_neighbor_ratio(g, metis_like_partition(g, 2, seed=0))
    r8 = remote_neighbor_ratio(g, metis_like_partition(g, 8, seed=0))
    assert r8 > r2  # Table 1's trend


def test_pairwise_boundary_counts_match_send_maps(tiny_dataset, tiny_book, tiny_parts):
    counts = pairwise_boundary_counts(tiny_dataset.graph, tiny_book)
    for part in tiny_parts:
        for q, rows in part.send_map.items():
            assert counts[part.part_id, q] == rows.size
    assert np.diag(counts).sum() == 0


def test_edge_cut_manual(path_graph):
    import numpy as np

    from repro.graph.partition.book import PartitionBook

    book = PartitionBook(part_of=np.array([0, 0, 1, 1, 1]), num_parts=2)
    assert edge_cut(path_graph, book) == 1
