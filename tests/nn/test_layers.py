"""Layer forward/backward correctness against numerical gradients."""

import numpy as np
import pytest

from repro.nn.gradcheck import numerical_gradient, relative_error
from repro.nn.layers import Dropout, LayerNorm, Linear, ReLU

RNG = np.random.default_rng(0)


def test_linear_forward_shape():
    layer = Linear(4, 3, np.random.default_rng(0))
    out = layer.forward(np.ones((5, 4), dtype=np.float32))
    assert out.shape == (5, 3)


def test_linear_gradcheck_input():
    layer = Linear(4, 3, np.random.default_rng(1))
    x0 = RNG.normal(size=(6, 4))
    d_out = RNG.normal(size=(6, 3)).astype(np.float32)

    def f(x):
        return float((layer.forward(x) * d_out).sum())

    num = numerical_gradient(f, x0)
    layer.forward(x0)
    analytic = layer.backward(d_out.astype(np.float64))
    assert relative_error(num, analytic) < 1e-4


def test_linear_gradcheck_weight_and_bias():
    layer = Linear(3, 2, np.random.default_rng(2))
    x = RNG.normal(size=(5, 3)).astype(np.float32)
    d_out = RNG.normal(size=(5, 2)).astype(np.float32)
    w0 = layer.weight.data.copy().astype(np.float64)

    def f_w(w):
        layer.weight.data[...] = w.astype(np.float32)
        return float((layer.forward(x) * d_out).sum())

    num_w = numerical_gradient(f_w, w0)
    layer.weight.data[...] = w0.astype(np.float32)
    layer.zero_grad() if hasattr(layer, "zero_grad") else None
    layer.weight.grad.fill(0)
    layer.bias.grad.fill(0)
    layer.forward(x)
    layer.backward(d_out)
    assert relative_error(num_w, layer.weight.grad) < 2e-2
    assert relative_error(d_out.sum(axis=0), layer.bias.grad) < 1e-5


def test_linear_grad_accumulates():
    layer = Linear(2, 2, np.random.default_rng(0))
    x = np.ones((3, 2), dtype=np.float32)
    d = np.ones((3, 2), dtype=np.float32)
    layer.forward(x)
    layer.backward(d)
    g1 = layer.weight.grad.copy()
    layer.forward(x)
    layer.backward(d)
    assert np.allclose(layer.weight.grad, 2 * g1)


def test_backward_before_forward_raises():
    layer = Linear(2, 2, np.random.default_rng(0))
    with pytest.raises(RuntimeError, match="before forward"):
        layer.backward(np.ones((1, 2), dtype=np.float32))
    norm = LayerNorm(4)
    with pytest.raises(RuntimeError):
        norm.backward(np.ones((1, 4), dtype=np.float32))
    relu = ReLU()
    with pytest.raises(RuntimeError):
        relu.backward(np.ones((1, 4), dtype=np.float32))


def test_layernorm_normalizes():
    norm = LayerNorm(16)
    x = RNG.normal(3.0, 5.0, size=(10, 16)).astype(np.float32)
    out = norm.forward(x)
    assert np.allclose(out.mean(axis=1), 0.0, atol=1e-5)
    assert np.allclose(out.std(axis=1), 1.0, atol=1e-2)


def test_layernorm_gradcheck():
    norm = LayerNorm(6)
    norm.gamma.data[...] = RNG.normal(1.0, 0.2, 6).astype(np.float32)
    norm.beta.data[...] = RNG.normal(0.0, 0.2, 6).astype(np.float32)
    x0 = RNG.normal(size=(4, 6))
    d_out = RNG.normal(size=(4, 6)).astype(np.float32)

    def f(x):
        return float((norm.forward(x) * d_out).sum())

    num = numerical_gradient(f, x0)
    norm.forward(x0)
    analytic = norm.backward(d_out.astype(np.float64))
    assert relative_error(num, analytic) < 1e-4


def test_layernorm_param_grads():
    norm = LayerNorm(5)
    x = RNG.normal(size=(7, 5)).astype(np.float32)
    d_out = RNG.normal(size=(7, 5)).astype(np.float32)
    out = norm.forward(x)
    x_hat = (out - norm.beta.data) / norm.gamma.data
    norm.backward(d_out)
    assert np.allclose(norm.beta.grad, d_out.sum(axis=0), atol=1e-5)
    assert np.allclose(norm.gamma.grad, (d_out * x_hat).sum(axis=0), atol=1e-4)


def test_relu():
    relu = ReLU()
    x = np.array([[-1.0, 0.0, 2.0]], dtype=np.float32)
    out = relu.forward(x)
    assert out.tolist() == [[0.0, 0.0, 2.0]]
    dx = relu.backward(np.ones_like(x))
    assert dx.tolist() == [[0.0, 0.0, 1.0]]


def test_dropout_train_vs_eval():
    drop = Dropout(0.5, np.random.default_rng(0))
    x = np.ones((1000, 4), dtype=np.float32)
    drop.training = True
    out = drop.forward(x)
    kept = float((out != 0).mean())
    assert 0.4 < kept < 0.6
    assert abs(out.mean() - 1.0) < 0.1  # inverted dropout preserves scale
    drop.training = False
    assert np.array_equal(drop.forward(x), x)


def test_dropout_zero_p_identity():
    drop = Dropout(0.0, np.random.default_rng(0))
    x = RNG.normal(size=(5, 3)).astype(np.float32)
    assert np.array_equal(drop.forward(x), x)
    assert np.array_equal(drop.backward(x), x)


def test_dropout_backward_uses_same_mask():
    drop = Dropout(0.5, np.random.default_rng(0))
    x = np.ones((50, 4), dtype=np.float32)
    out = drop.forward(x)
    dx = drop.backward(np.ones_like(x))
    assert np.array_equal(out != 0, dx != 0)


def test_dropout_invalid_p():
    with pytest.raises(ValueError):
        Dropout(1.5, np.random.default_rng(0))
