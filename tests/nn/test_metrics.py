"""Accuracy and micro-F1."""

import math

import numpy as np

from repro.nn.metrics import accuracy, micro_f1, task_metric


def test_accuracy_manual():
    logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
    labels = np.array([0, 1, 1])
    mask = np.ones(3, dtype=bool)
    assert abs(accuracy(logits, labels, mask) - 2 / 3) < 1e-9


def test_accuracy_respects_mask():
    logits = np.array([[1.0, 0.0], [1.0, 0.0]])
    labels = np.array([0, 1])
    assert accuracy(logits, labels, np.array([True, False])) == 1.0


def test_accuracy_empty_mask_nan():
    assert math.isnan(accuracy(np.zeros((2, 2)), np.zeros(2, int), np.zeros(2, bool)))


def test_micro_f1_manual():
    # predictions: [[+,-],[+,+]] vs truth [[+,-],[-,+]] -> tp=2, fp=1, fn=0
    logits = np.array([[1.0, -1.0], [2.0, 3.0]])
    targets = np.array([[1.0, 0.0], [0.0, 1.0]])
    mask = np.ones(2, dtype=bool)
    f1 = micro_f1(logits, targets, mask)
    expected = 2 * 2 / (2 * 2 + 1 + 0)
    assert abs(f1 - expected) < 1e-9


def test_micro_f1_all_negative_predictions():
    logits = -np.ones((3, 4))
    targets = np.ones((3, 4))
    assert micro_f1(logits, targets, np.ones(3, dtype=bool)) == 0.0


def test_micro_f1_perfect():
    targets = (np.random.default_rng(0).random((10, 5)) < 0.5).astype(float)
    logits = np.where(targets > 0.5, 3.0, -3.0)
    assert micro_f1(logits, targets, np.ones(10, dtype=bool)) == 1.0


def test_task_metric_dispatch():
    logits = np.array([[1.0, -1.0]])
    single = task_metric(logits, np.array([0]), np.array([True]), multilabel=False)
    multi = task_metric(
        logits, np.array([[1.0, 0.0]]), np.array([True]), multilabel=True
    )
    assert single == 1.0 and multi == 1.0
