"""Optimizers: reference-step equivalence and determinism."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam


def _param(values):
    p = Parameter(np.array(values, dtype=np.float32))
    return p


def test_sgd_step():
    p = _param([1.0, 2.0])
    p.grad[...] = [0.5, -1.0]
    SGD([p], lr=0.1).step()
    assert np.allclose(p.data, [0.95, 2.1])


def test_sgd_momentum():
    p = _param([0.0])
    opt = SGD([p], lr=1.0, momentum=0.9)
    p.grad[...] = [1.0]
    opt.step()  # v=1, x=-1
    opt.step()  # v=1.9, x=-2.9
    assert np.allclose(p.data, [-2.9])


def test_sgd_weight_decay():
    p = _param([1.0])
    opt = SGD([p], lr=0.1, weight_decay=0.5)
    p.grad[...] = [0.0]
    opt.step()
    assert np.allclose(p.data, [1.0 - 0.1 * 0.5])


def test_adam_matches_reference():
    """One Adam step against the textbook update, step-by-step."""
    p = _param([1.0, -2.0])
    g = np.array([0.3, -0.1], dtype=np.float32)
    p.grad[...] = g
    lr, b1, b2, eps = 0.01, 0.9, 0.999, 1e-8
    opt = Adam([p], lr=lr, betas=(b1, b2), eps=eps)
    opt.step()
    m = (1 - b1) * g
    v = (1 - b2) * g**2
    m_hat = m / (1 - b1)
    v_hat = v / (1 - b2)
    expected = np.array([1.0, -2.0]) - lr * m_hat / (np.sqrt(v_hat) + eps)
    assert np.allclose(p.data, expected, atol=1e-6)


def test_adam_two_steps_reference():
    p = _param([0.5])
    lr, b1, b2, eps = 0.1, 0.9, 0.999, 1e-8
    opt = Adam([p], lr=lr, betas=(b1, b2), eps=eps)
    x, m, v = 0.5, 0.0, 0.0
    for t in (1, 2):
        g = 2 * x  # gradient of x^2
        p.grad[...] = [g]
        opt.step()
        m = b1 * m + (1 - b1) * g
        v = b2 * v + (1 - b2) * g * g
        x = x - lr * (m / (1 - b1**t)) / (np.sqrt(v / (1 - b2**t)) + eps)
        assert np.allclose(p.data, [x], atol=1e-6)
        x = float(p.data[0])


def test_adam_determinism():
    def run():
        p = _param([1.0, 2.0, 3.0])
        opt = Adam([p], lr=0.05)
        for i in range(5):
            p.grad[...] = [0.1 * i, -0.2, 0.3]
            opt.step()
        return p.data.copy()

    assert np.array_equal(run(), run())


def test_zero_grad():
    p = _param([1.0])
    p.grad[...] = [5.0]
    opt = SGD([p], lr=0.1)
    opt.zero_grad()
    assert np.all(p.grad == 0)


def test_empty_params_rejected():
    with pytest.raises(ValueError):
        SGD([], lr=0.1)


def test_invalid_hyperparams_rejected():
    p = _param([1.0])
    with pytest.raises(ValueError):
        Adam([p], lr=-1.0)
    with pytest.raises(ValueError):
        Adam([p], lr=0.1, betas=(1.0, 0.9))
