"""Loss functions: values, gradients, masking and normalizer semantics."""

import numpy as np
import pytest

from repro.nn.gradcheck import numerical_gradient, relative_error
from repro.nn.losses import bce_with_logits_loss, softmax_cross_entropy

RNG = np.random.default_rng(0)


def test_ce_matches_manual():
    logits = np.array([[2.0, 0.0], [0.0, 2.0]], dtype=np.float32)
    labels = np.array([0, 0])
    mask = np.array([True, True])
    loss, _ = softmax_cross_entropy(logits, labels, mask)
    expected = float(
        np.mean([-np.log(np.exp(2) / (np.exp(2) + 1)), -np.log(1 / (1 + np.exp(2)))])
    )
    assert abs(loss - expected) < 1e-6


def test_ce_gradcheck():
    logits0 = RNG.normal(size=(5, 4))
    labels = RNG.integers(0, 4, 5)
    mask = np.array([True, False, True, True, False])

    def f(z):
        loss, _ = softmax_cross_entropy(z.astype(np.float32), labels, mask)
        return loss

    num = numerical_gradient(f, logits0)
    _, analytic = softmax_cross_entropy(logits0.astype(np.float32), labels, mask)
    assert relative_error(num, analytic) < 1e-2


def test_ce_mask_zeroes_gradient():
    logits = RNG.normal(size=(4, 3)).astype(np.float32)
    labels = np.array([0, 1, 2, 0])
    mask = np.array([True, False, True, False])
    _, d = softmax_cross_entropy(logits, labels, mask)
    assert np.all(d[~mask] == 0)
    assert np.any(d[mask] != 0)


def test_ce_normalizer_scales():
    logits = RNG.normal(size=(4, 3)).astype(np.float32)
    labels = np.array([0, 1, 2, 0])
    mask = np.ones(4, dtype=bool)
    loss_local, d_local = softmax_cross_entropy(logits, labels, mask)
    loss_global, d_global = softmax_cross_entropy(logits, labels, mask, normalizer=8)
    assert abs(loss_local - 2 * loss_global) < 1e-6
    assert np.allclose(d_local, 2 * d_global)


def test_ce_distributed_sum_equals_single():
    """Two shards with a global normalizer sum to the single-machine loss."""
    logits = RNG.normal(size=(6, 3)).astype(np.float32)
    labels = RNG.integers(0, 3, 6)
    mask = np.ones(6, dtype=bool)
    full, d_full = softmax_cross_entropy(logits, labels, mask)
    l1, d1 = softmax_cross_entropy(logits[:2], labels[:2], mask[:2], normalizer=6)
    l2, d2 = softmax_cross_entropy(logits[2:], labels[2:], mask[2:], normalizer=6)
    assert abs(full - (l1 + l2)) < 1e-6
    assert np.allclose(d_full, np.vstack([d1, d2]), atol=1e-7)


def test_ce_empty_mask():
    logits = RNG.normal(size=(3, 2)).astype(np.float32)
    loss, d = softmax_cross_entropy(logits, np.zeros(3, dtype=int), np.zeros(3, dtype=bool))
    assert loss == 0.0 and np.all(d == 0)


def test_ce_shape_errors():
    with pytest.raises(ValueError):
        softmax_cross_entropy(
            np.zeros((2, 2), dtype=np.float32), np.zeros(3, dtype=int), np.ones(2, bool)
        )
    with pytest.raises(ValueError, match="mask"):
        softmax_cross_entropy(
            np.zeros((2, 2), dtype=np.float32), np.zeros(2, dtype=int), np.ones(3, bool)
        )


def test_bce_matches_manual():
    logits = np.array([[0.0]], dtype=np.float32)
    targets = np.array([[1.0]], dtype=np.float32)
    mask = np.array([True])
    loss, _ = bce_with_logits_loss(logits, targets, mask)
    assert abs(loss - np.log(2)) < 1e-6


def test_bce_gradcheck():
    logits0 = RNG.normal(size=(4, 3))
    targets = (RNG.random((4, 3)) < 0.4).astype(np.float32)
    mask = np.array([True, True, False, True])

    def f(z):
        loss, _ = bce_with_logits_loss(z.astype(np.float32), targets, mask)
        return loss

    num = numerical_gradient(f, logits0)
    _, analytic = bce_with_logits_loss(logits0.astype(np.float32), targets, mask)
    assert relative_error(num, analytic) < 1e-2


def test_bce_stability_large_logits():
    logits = np.array([[100.0, -100.0]], dtype=np.float32)
    targets = np.array([[1.0, 0.0]], dtype=np.float32)
    loss, d = bce_with_logits_loss(logits, targets, np.array([True]))
    assert np.isfinite(loss) and np.isfinite(d).all()
    assert loss < 1e-6  # perfectly confident and correct


def test_bce_distributed_sum_equals_single():
    logits = RNG.normal(size=(6, 4)).astype(np.float32)
    targets = (RNG.random((6, 4)) < 0.5).astype(np.float32)
    mask = np.ones(6, dtype=bool)
    full, d_full = bce_with_logits_loss(logits, targets, mask)
    l1, _ = bce_with_logits_loss(logits[:3], targets[:3], mask[:3], normalizer=6)
    l2, _ = bce_with_logits_loss(logits[3:], targets[3:], mask[3:], normalizer=6)
    assert abs(full - (l1 + l2)) < 1e-6


def test_bce_shape_errors():
    with pytest.raises(ValueError, match="targets"):
        bce_with_logits_loss(
            np.zeros((2, 3), dtype=np.float32),
            np.zeros((2, 2), dtype=np.float32),
            np.ones(2, bool),
        )
