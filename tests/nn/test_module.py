"""Module tree: parameter discovery, state dicts, gradient vectors."""

import numpy as np
import pytest

from repro.nn.layers import LayerNorm, Linear
from repro.nn.module import Module, Parameter


class _Net(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(3, 4, np.random.default_rng(0))
        self.norm = LayerNorm(4)
        self.blocks = [Linear(4, 2, np.random.default_rng(1))]
        self.scalar = Parameter(np.zeros(1, dtype=np.float32))


def test_named_parameters_order_deterministic():
    names = [n for n, _ in _Net().named_parameters()]
    assert names == [
        "fc1.weight",
        "fc1.bias",
        "norm.gamma",
        "norm.beta",
        "blocks.0.weight",
        "blocks.0.bias",
        "scalar",
    ]


def test_num_parameters():
    net = _Net()
    assert net.num_parameters() == 3 * 4 + 4 + 4 + 4 + 4 * 2 + 2 + 1


def test_train_eval_propagates():
    net = _Net()
    net.eval()
    assert not net.norm.training
    net.train()
    assert net.blocks[0].training


def test_state_dict_roundtrip():
    net1, net2 = _Net(), _Net()
    net1.fc1.weight.data[...] = 7.0
    net2.load_state_dict(net1.state_dict())
    assert np.array_equal(net2.fc1.weight.data, net1.fc1.weight.data)


def test_state_dict_key_mismatch():
    net = _Net()
    state = net.state_dict()
    state["extra"] = np.zeros(1)
    with pytest.raises(KeyError, match="unexpected"):
        net.load_state_dict(state)
    state2 = net.state_dict()
    del state2["fc1.weight"]
    with pytest.raises(KeyError, match="missing"):
        net.load_state_dict(state2)


def test_state_dict_shape_mismatch():
    net = _Net()
    state = net.state_dict()
    state["fc1.weight"] = np.zeros((2, 2), dtype=np.float32)
    with pytest.raises(ValueError, match="shape"):
        net.load_state_dict(state)


def test_grad_vector_roundtrip():
    net = _Net()
    rng = np.random.default_rng(3)
    for p in net.parameters():
        p.grad[...] = rng.normal(size=p.shape).astype(np.float32)
    vec = net.grad_vector()
    assert vec.size == net.num_parameters()
    net2 = _Net()
    net2.set_grad_vector(vec)
    assert np.array_equal(net2.grad_vector(), vec)


def test_set_grad_vector_wrong_length():
    net = _Net()
    with pytest.raises(ValueError, match="length"):
        net.set_grad_vector(np.zeros(3, dtype=np.float32))


def test_zero_grad():
    net = _Net()
    net.fc1.weight.grad[...] = 1.0
    net.zero_grad()
    assert np.all(net.fc1.weight.grad == 0)
