"""Shared fixtures: tiny graphs, datasets and partitions used across suites."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.datasets import load_dataset
from repro.graph.graph import Graph
from repro.graph.partition.api import partition_graph
from repro.graph.partition.book import PartitionBook, build_local_partitions


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def path_graph():
    """0-1-2-3-4 path."""
    src = np.array([0, 1, 2, 3])
    dst = np.array([1, 2, 3, 4])
    return Graph.from_edges(src, dst, 5)


@pytest.fixture(scope="session")
def small_graph():
    """A deterministic ~60-node community graph for structural tests."""
    gen = np.random.default_rng(7)
    n = 60
    src = gen.integers(0, n, 400)
    dst = (src + gen.integers(1, 6, 400)) % n  # ring-local edges
    return Graph.from_edges(src, dst, n)


@pytest.fixture(scope="session")
def tiny_dataset():
    return load_dataset("yelp", scale="tiny", seed=0)


@pytest.fixture(scope="session")
def tiny_single_label_dataset():
    return load_dataset("ogbn-products", scale="tiny", seed=0)


@pytest.fixture(scope="session")
def tiny_book(tiny_dataset):
    return partition_graph(tiny_dataset.graph, 4, method="metis", seed=0)


@pytest.fixture(scope="session")
def tiny_parts(tiny_dataset, tiny_book):
    return build_local_partitions(tiny_dataset.graph, tiny_book)


@pytest.fixture()
def single_part_book(tiny_dataset):
    return PartitionBook(
        part_of=np.zeros(tiny_dataset.num_nodes, dtype=np.int32), num_parts=1
    )


@pytest.fixture(scope="session")
def huge_store(tmp_path_factory):
    """A small partition store built by the streaming huge-graph builder.

    Small enough to stay fast, structured enough to exercise every store
    region (multiple chunks, non-trivial halos on all four partitions).
    """
    from repro.graph.generators import HugeGraphConfig
    from repro.graph.io import build_partition_store

    cfg = HugeGraphConfig(
        num_nodes=3000,
        avg_degree=6.0,
        num_features=24,
        num_classes=7,
        num_communities=12,
        chunk_nodes=512,
        chunk_edges=4096,
    )
    path = tmp_path_factory.mktemp("hugestore") / "store"
    return build_partition_store(cfg, 4, path, seed=11, agg_kind="gcn")
