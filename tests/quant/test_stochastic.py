"""Stochastic quantization: Theorem 1's unbiasedness and variance bound."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant.stochastic import (
    METADATA_BYTES_PER_ROW,
    dequantize,
    quantize_stochastic,
    stochastic_round,
)


def test_stochastic_round_integers_fixed():
    rng = np.random.default_rng(0)
    x = np.array([1.0, 2.0, -3.0])
    assert np.array_equal(stochastic_round(x, rng), x)


def test_stochastic_round_expectation():
    rng = np.random.default_rng(0)
    x = np.full(200_000, 0.3)
    mean = stochastic_round(x, rng).mean()
    assert abs(mean - 0.3) < 0.01


@pytest.mark.parametrize("bits", [1, 2, 4, 8])
def test_codes_within_range(bits):
    rng = np.random.default_rng(0)
    h = rng.normal(size=(40, 16)).astype(np.float32)
    q = quantize_stochastic(h, bits, rng)
    assert q.codes.dtype == np.uint8
    assert q.codes.max() <= 2**bits - 1


def test_constant_rows_exact():
    rng = np.random.default_rng(0)
    h = np.full((3, 8), 2.5, dtype=np.float32)
    q = quantize_stochastic(h, 2, rng)
    assert np.array_equal(dequantize(q), h)
    assert np.all(q.scale == 0)


def test_endpoints_exact():
    """Min and max of each row are representable exactly at any bit-width."""
    rng = np.random.default_rng(0)
    h = np.array([[0.0, 1.0, 0.25, 0.75]], dtype=np.float32)
    for _ in range(20):
        deq = dequantize(quantize_stochastic(h, 2, rng))
        assert deq[0, 0] == 0.0
        assert abs(deq[0, 1] - 1.0) < 1e-6


def test_unbiasedness_statistical():
    rng = np.random.default_rng(42)
    h = rng.normal(size=(4, 8)).astype(np.float32)
    reps = np.stack([dequantize(quantize_stochastic(h, 2, rng)) for _ in range(3000)])
    bias = np.abs(reps.mean(axis=0) - h)
    # Standard error of the mean at 2 bits is scale/sqrt(6*3000); the row
    # scale is ~(range/3); allow 5 sigma.
    scale = (h.max(axis=1) - h.min(axis=1)) / 3.0
    tol = 5 * scale[:, None] / np.sqrt(6 * 3000)
    assert (bias < tol + 1e-7).all()


@pytest.mark.parametrize("bits", [2, 4, 8])
def test_variance_bounded_by_theorem1(bits):
    rng = np.random.default_rng(7)
    h = rng.normal(size=(3, 32)).astype(np.float32)
    reps = np.stack(
        [dequantize(quantize_stochastic(h, bits, rng)) for _ in range(2000)]
    )
    # Vector variance = sum over elements of per-element variance.
    emp_var = reps.var(axis=0).sum(axis=1)
    scale = (h.max(axis=1) - h.min(axis=1)) / (2**bits - 1)
    bound = 32 * scale**2 / 6.0
    assert (emp_var <= bound * 1.2).all()  # 20% slack for sampling noise


def test_higher_bits_lower_error():
    rng = np.random.default_rng(1)
    h = rng.normal(size=(100, 32)).astype(np.float32)
    errs = {
        bits: np.abs(dequantize(quantize_stochastic(h, bits, rng)) - h).mean()
        for bits in (2, 4, 8)
    }
    assert errs[8] < errs[4] < errs[2]


def test_wire_bytes_formula():
    rng = np.random.default_rng(0)
    h = rng.normal(size=(10, 16)).astype(np.float32)
    q2 = quantize_stochastic(h, 2, rng)
    assert q2.wire_bytes == (10 * 16 * 2 + 7) // 8 + 10 * METADATA_BYTES_PER_ROW
    q8 = quantize_stochastic(h, 8, rng)
    assert q8.wire_bytes == 10 * 16 + 10 * METADATA_BYTES_PER_ROW
    assert q2.wire_bytes < q8.wire_bytes < h.nbytes


def test_invalid_bits_rejected():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        quantize_stochastic(np.zeros((2, 2), dtype=np.float32), 3, rng)


def test_non_2d_rejected():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        quantize_stochastic(np.zeros(4, dtype=np.float32), 2, rng)


@given(
    hnp.arrays(
        dtype=np.float32,
        shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=20),
        elements=st.floats(-100, 100, width=32),
    ),
    st.sampled_from([2, 4, 8]),
)
@settings(max_examples=80, deadline=None)
def test_property_dequantized_within_row_range(h, bits):
    """De-quantized values never leave the [row min, row max] envelope."""
    rng = np.random.default_rng(0)
    q = quantize_stochastic(h, bits, rng)
    deq = dequantize(q)
    lo = h.min(axis=1, keepdims=True)
    hi = h.max(axis=1, keepdims=True)
    eps = 1e-3 * (np.abs(hi) + np.abs(lo) + 1)
    assert (deq >= lo - eps).all() and (deq <= hi + eps).all()


@given(
    hnp.arrays(
        dtype=np.float32,
        shape=(4, 8),
        elements=st.floats(-10, 10, width=32),
    )
)
@settings(max_examples=50, deadline=None)
def test_property_8bit_error_bounded_by_scale(h):
    rng = np.random.default_rng(0)
    q = quantize_stochastic(h, 8, rng)
    err = np.abs(dequantize(q) - h)
    assert (err <= q.scale[:, None] + 1e-5).all()
