"""Mixed-precision encoder: the wire format of adaptive quantization."""

import numpy as np
import pytest

from repro.quant.mixed import GROUP_HEADER_BYTES, MixedPrecisionEncoder
from repro.quant.stochastic import METADATA_BYTES_PER_ROW


def _encoder(seed=0):
    return MixedPrecisionEncoder(np.random.default_rng(seed))


def test_encode_decode_shape():
    h = np.random.default_rng(1).normal(size=(12, 6)).astype(np.float32)
    bits = np.array([2, 8, 2, 4, 8, 2, 4, 4, 8, 2, 2, 8])
    payload = _encoder().encode(h, bits)
    out = payload.decode()
    assert out.shape == h.shape
    assert out.dtype == np.float32


def test_rows_grouped_by_bits():
    h = np.random.default_rng(1).normal(size=(6, 4)).astype(np.float32)
    bits = np.array([8, 2, 8, 2, 4, 4])
    payload = _encoder().encode(h, bits)
    assert payload.group_bits == [2, 4, 8]
    groups = {b: rows.tolist() for b, rows in zip(payload.group_bits, payload.group_rows)}
    assert groups[2] == [1, 3]
    assert groups[4] == [4, 5]
    assert groups[8] == [0, 2]


def test_higher_bits_rows_more_accurate():
    rng = np.random.default_rng(2)
    h = rng.normal(size=(400, 16)).astype(np.float32)
    bits = np.array([2] * 200 + [8] * 200)
    payload = _encoder().encode(h, bits)
    out = payload.decode()
    err2 = np.abs(out[:200] - h[:200]).mean()
    err8 = np.abs(out[200:] - h[200:]).mean()
    assert err8 < err2


def test_wire_bytes_accounting():
    h = np.ones((10, 8), dtype=np.float32)
    h[:, 0] = 0.0  # non-constant rows
    bits = np.array([2] * 4 + [8] * 6)
    payload = _encoder().encode(h, bits)
    expected = (
        (4 * 8 * 2 + 7) // 8 + 4 * METADATA_BYTES_PER_ROW + GROUP_HEADER_BYTES
        + 6 * 8 + 6 * METADATA_BYTES_PER_ROW + GROUP_HEADER_BYTES
    )
    assert payload.wire_bytes == expected
    assert payload.float_bytes == 10 * 8 * 4
    assert payload.wire_bytes < payload.float_bytes


def test_single_bits_group():
    h = np.random.default_rng(0).normal(size=(5, 3)).astype(np.float32)
    payload = _encoder().encode(h, np.full(5, 4))
    assert payload.group_bits == [4]
    assert payload.group_rows[0].tolist() == [0, 1, 2, 3, 4]


def test_bits_length_mismatch_rejected():
    h = np.zeros((3, 2), dtype=np.float32)
    with pytest.raises(ValueError, match="one entry per row"):
        _encoder().encode(h, np.array([2, 2]))


def test_unbiasedness_of_mixed_encoding():
    rng = np.random.default_rng(3)
    h = rng.normal(size=(6, 8)).astype(np.float32)
    bits = np.array([2, 4, 8, 2, 4, 8])
    enc = _encoder(7)
    reps = np.stack([enc.encode(h, bits).decode() for _ in range(2000)])
    scale = (h.max(axis=1) - h.min(axis=1)) / 3.0  # worst (2-bit) scale
    tol = 5 * scale[:, None] / np.sqrt(6 * 2000)
    assert (np.abs(reps.mean(axis=0) - h) < tol + 1e-7).all()
