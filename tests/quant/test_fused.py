"""Encoder-level equivalence of the fused step engine vs. the legacy path."""

import numpy as np
import pytest

from repro.quant.fused import FusedStepEncoder, decode_cluster_step, decode_step
from repro.quant.mixed import MixedPrecisionEncoder


def _step(seed, n_pairs=5, rows=37, dim=9, bit_choices=(2, 4, 8)):
    gen = np.random.default_rng(seed)
    n = n_pairs * rows
    values = gen.normal(size=(300, dim)).astype(np.float32)
    cat_idx = gen.integers(0, values.shape[0], n)
    bits_cat = gen.choice(bit_choices, size=n)
    pairs = [(0, q + 1) for q in range(n_pairs)]
    counts = np.full(n_pairs, rows, dtype=np.int64)
    return values, pairs, counts, cat_idx, bits_cat, dim


def _encode_both(seed, **kw):
    values, pairs, counts, cat_idx, bits_cat, dim = _step(seed, **kw)
    legacy_enc = MixedPrecisionEncoder(np.random.default_rng(seed + 99))
    fused_enc = FusedStepEncoder(np.random.default_rng(seed + 99))

    n = int(counts.sum())
    plan = fused_enc.plan_for("k", pairs, counts, [(0, 0, n)], cat_idx, bits_cat, dim)
    fused_payloads = fused_enc.encode_step(plan, {0: values})

    bounds = np.concatenate([[0], np.cumsum(counts)])
    legacy_payloads = {}
    for i, pair in enumerate(pairs):
        sel = cat_idx[bounds[i] : bounds[i + 1]]
        legacy_payloads[pair] = legacy_enc.encode(
            values[sel], bits_cat[bounds[i] : bounds[i + 1]]
        )
    return legacy_payloads, fused_payloads


@pytest.mark.parametrize("bit_choices", [(2, 4, 8), (8,), (2,), (1, 2, 4, 8)])
def test_fused_encode_bitwise_identical_to_legacy(bit_choices):
    legacy, fused = _encode_both(7, bit_choices=bit_choices)
    assert set(legacy) == set(fused)
    for pair in legacy:
        pl, pf = legacy[pair], fused[pair]
        assert pl.wire_bytes == pf.wire_bytes
        assert pl.group_bits == pf.group_bits
        assert all(np.array_equal(a, b) for a, b in zip(pl.group_rows, pf.group_rows))
        assert all(np.array_equal(a, b) for a, b in zip(pl.streams, pf.streams))
        assert all(
            np.array_equal(a, b) for a, b in zip(pl.zero_points, pf.zero_points)
        )
        assert all(np.array_equal(a, b) for a, b in zip(pl.scales, pf.scales))
        assert np.array_equal(pl.decode(), pf.decode())


def test_fused_encode_ragged_pair_sizes():
    gen = np.random.default_rng(3)
    dim = 7
    counts = np.array([1, 13, 0, 64, 5], dtype=np.int64)
    pairs = [(0, q + 1) for q in range(counts.size)]
    n = int(counts.sum())
    values = gen.normal(size=(128, dim)).astype(np.float32)
    cat_idx = gen.integers(0, values.shape[0], n)
    bits_cat = gen.choice([2, 4, 8], size=n)

    legacy_enc = MixedPrecisionEncoder(np.random.default_rng(11))
    fused_enc = FusedStepEncoder(np.random.default_rng(11))
    plan = fused_enc.plan_for("k", pairs, counts, [(0, 0, n)], cat_idx, bits_cat, dim)
    fused = fused_enc.encode_step(plan, {0: values})

    bounds = np.concatenate([[0], np.cumsum(counts)])
    for i, pair in enumerate(pairs):
        sel = cat_idx[bounds[i] : bounds[i + 1]]
        pl = legacy_enc.encode(values[sel], bits_cat[bounds[i] : bounds[i + 1]])
        assert pl.wire_bytes == fused[pair].wire_bytes
        assert np.array_equal(pl.decode(), fused[pair].decode())


def test_plan_cache_revalidates_on_bit_change():
    values, pairs, counts, cat_idx, bits_cat, dim = _step(5)
    enc = FusedStepEncoder(np.random.default_rng(0))
    n = int(counts.sum())
    plan1 = enc.plan_for("k", pairs, counts, [(0, 0, n)], cat_idx, bits_cat, dim)
    plan2 = enc.plan_for("k", pairs, counts, [(0, 0, n)], cat_idx, bits_cat, dim)
    assert plan1 is plan2  # unchanged bits: cached
    new_bits = bits_cat.copy()
    new_bits[0] = 2 if bits_cat[0] != 2 else 4
    plan3 = enc.plan_for("k", pairs, counts, [(0, 0, n)], cat_idx, new_bits, dim)
    assert plan3 is not plan1


def test_decode_step_matches_payload_decode():
    _, fused = _encode_both(21)
    mailbox = {dst: p for (_, dst), p in fused.items()}
    decoded = decode_step(mailbox)
    for src, payload in mailbox.items():
        assert np.array_equal(decoded[src], payload.decode())


def test_decode_cluster_step_groups_by_receiver():
    _, fused = _encode_both(22, n_pairs=4)
    items = list(fused.items())
    collects = {
        10: {src: p for (src, _), p in items[:2]},
        11: {src: p for (src, _), p in items[2:]},
    }
    decoded = decode_cluster_step(collects)
    assert set(decoded) == {10, 11}
    for dst, mailbox in collects.items():
        for src, payload in mailbox.items():
            assert np.array_equal(decoded[dst][src], payload.decode())


def test_decode_cluster_step_empty_mailboxes():
    assert decode_cluster_step({0: {}, 1: {}}) == {0: {}, 1: {}}


def test_encoder_empty_step():
    enc = FusedStepEncoder(np.random.default_rng(0))
    plan = enc.plan_for(
        "k", [], np.zeros(0, dtype=np.int64), [], np.zeros(0, dtype=np.int64),
        np.zeros(0, dtype=np.int64), 4,
    )
    assert enc.encode_step(plan, {}) == {}


def test_quantize_with_noise_matches_stochastic():
    from repro.quant.stochastic import quantize_stochastic, quantize_with_noise

    h = np.random.default_rng(1).normal(size=(50, 8)).astype(np.float32)
    r1, r2 = np.random.default_rng(5), np.random.default_rng(5)
    q1 = quantize_stochastic(h, 4, r1)
    q2 = quantize_with_noise(h, 4, r2.random(h.shape))
    assert np.array_equal(q1.codes, q2.codes)
    assert np.array_equal(q1.zero_point, q2.zero_point)
    assert np.array_equal(q1.scale, q2.scale)
