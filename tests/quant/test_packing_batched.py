"""Property tests for batched bit-packing on ragged segment layouts."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.packing import (
    pack_bits,
    pack_bits_batched,
    unpack_bits,
    unpack_bits_batched,
)

bits_strategy = st.sampled_from([1, 2, 4, 8])
counts_strategy = st.lists(st.integers(min_value=0, max_value=65), min_size=0, max_size=8)


@settings(max_examples=60, deadline=None)
@given(bits=bits_strategy, counts=counts_strategy, seed=st.integers(0, 2**16))
def test_batched_pack_matches_per_segment_pack(bits, counts, seed):
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    codes = np.random.default_rng(seed).integers(0, 1 << bits, total, dtype=np.uint8)
    streams = pack_bits_batched(codes, bits, counts)
    assert len(streams) == counts.size
    bounds = np.concatenate([[0], np.cumsum(counts)])
    for i, stream in enumerate(streams):
        expected = pack_bits(codes[bounds[i] : bounds[i + 1]], bits)
        assert np.array_equal(stream, expected)


@settings(max_examples=60, deadline=None)
@given(bits=bits_strategy, counts=counts_strategy, seed=st.integers(0, 2**16))
def test_batched_roundtrip_ragged(bits, counts, seed):
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    codes = np.random.default_rng(seed).integers(0, 1 << bits, total, dtype=np.uint8)
    streams = pack_bits_batched(codes, bits, counts)
    recovered = unpack_bits_batched(streams, bits, counts)
    assert np.array_equal(recovered, codes)


@settings(max_examples=40, deadline=None)
@given(bits=bits_strategy, counts=counts_strategy, seed=st.integers(0, 2**16))
def test_batched_unpack_matches_per_segment_unpack(bits, counts, seed):
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    codes = np.random.default_rng(seed).integers(0, 1 << bits, total, dtype=np.uint8)
    streams = pack_bits_batched(codes, bits, counts)
    per_segment = [
        unpack_bits(stream, bits, int(n)) for stream, n in zip(streams, counts)
    ]
    batched = unpack_bits_batched(streams, bits, counts)
    if per_segment:
        assert np.array_equal(batched, np.concatenate(per_segment))
    else:
        assert batched.size == 0


def test_pack_batched_validates_counts():
    codes = np.zeros(10, dtype=np.uint8)
    try:
        pack_bits_batched(codes, 2, np.array([4, 4]))  # sums to 8, not 10
    except ValueError:
        pass
    else:
        raise AssertionError("expected ValueError for mismatched counts")


def test_pack_batched_2d_codes():
    codes = np.arange(24, dtype=np.uint8).reshape(6, 4) % 4
    streams = pack_bits_batched(codes, 2, np.array([8, 16]))
    flat = codes.ravel()
    assert np.array_equal(streams[0], pack_bits(flat[:8], 2))
    assert np.array_equal(streams[1], pack_bits(flat[8:], 2))
