"""Variance theory (Theorems 1 and 3 ingredients)."""

import numpy as np
import pytest

from repro.quant.stochastic import dequantize, quantize_stochastic
from repro.quant.theory import (
    SUPPORTED_BITS,
    beta_values,
    layer_variance_bound,
    quantization_variance,
    variance_objective,
)


def test_theorem1_formula_manual():
    h = np.array([[0.0, 3.0]])
    # range 3, bits 2 -> scale 1, D=2 -> variance = 2/6
    assert abs(quantization_variance(h, 2)[0] - 2 / 6) < 1e-12


def test_theorem1_matches_empirical_variance():
    rng = np.random.default_rng(0)
    h = rng.normal(size=(2, 64)).astype(np.float32)
    predicted = quantization_variance(h, 2)
    reps = np.stack([dequantize(quantize_stochastic(h, 2, rng)) for _ in range(4000)])
    empirical = reps.var(axis=0).sum(axis=1)
    # Uniform-fraction assumption gives an upper bound; empirical should be
    # within it and of the same order.
    assert (empirical <= predicted * 1.15).all()
    assert (empirical >= predicted * 0.2).all()


def test_variance_decreases_with_bits():
    h = np.random.default_rng(0).normal(size=(5, 16))
    v = [quantization_variance(h, b).sum() for b in (2, 4, 8)]
    assert v[0] > v[1] > v[2]


def test_beta_values_formula():
    value_range = np.array([2.0])
    alpha_sq = np.array([0.5])
    beta = beta_values(value_range, 10, alpha_sq)
    assert abs(beta[0] - 0.5 * 10 * 4.0 / 6.0) < 1e-12


def test_beta_shape_mismatch():
    with pytest.raises(ValueError):
        beta_values(np.ones(3), 4, np.ones(2))


def test_variance_objective():
    beta = np.array([6.0, 6.0])
    bits = np.array([2, 8])
    expected = 6.0 / 9.0 + 6.0 / 255.0**2
    assert abs(variance_objective(beta, bits) - expected) < 1e-12


def test_variance_objective_monotone():
    beta = np.ones(4)
    lo = variance_objective(beta, np.full(4, 2))
    hi = variance_objective(beta, np.full(4, 8))
    assert hi < lo


def test_layer_variance_bound_positive_and_monotone():
    beta = np.ones(3)
    b_lo = layer_variance_bound(beta, np.full(3, 2), beta, np.full(3, 2))
    b_hi = layer_variance_bound(beta, np.full(3, 8), beta, np.full(3, 8))
    assert 0 < b_hi < b_lo


def test_supported_bits_match_paper():
    assert SUPPORTED_BITS == (2, 4, 8)
