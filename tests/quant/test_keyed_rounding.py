"""Keyed (counter-based) rounding noise: determinism from coordinates.

The PR-5 contract: under :class:`KeyedRounding`, the stochastic-rounding
noise of every quantized message block is a pure function of
``(run_seed, epoch, phase, layer, src, dst)`` — never of execution order,
thread placement or how the step was sharded.  These tests pin the key
derivation, the policy API, and the bitwise equivalence between the
per-pair and fused encoders (which the trainer-level equivalence suites
build on).
"""

import random

import numpy as np
import pytest

from repro.quant.fused import FusedStepEncoder
from repro.quant.mixed import MixedPrecisionEncoder
from repro.quant.stochastic import (
    KeyedRounding,
    StreamRounding,
    as_rounding,
    block_key,
)


# ----------------------------------------------------------------------
# Key derivation
# ----------------------------------------------------------------------
def test_block_key_deterministic_and_coordinate_sensitive():
    base = block_key(7, 3, "fwd", 1, 0, 2)
    assert base == block_key(7, 3, "fwd", 1, 0, 2)
    # Every coordinate matters, including direction and src/dst order.
    variants = [
        block_key(8, 3, "fwd", 1, 0, 2),
        block_key(7, 4, "fwd", 1, 0, 2),
        block_key(7, 3, "bwd", 1, 0, 2),
        block_key(7, 3, "fwd", 2, 0, 2),
        block_key(7, 3, "fwd", 1, 2, 0),
        block_key(7, 3, "fwd", 1, 0, 3),
    ]
    assert len({base, *variants}) == len(variants) + 1
    for w0, w1 in (base, *variants):
        assert 0 <= w0 < 2**64 and 0 <= w1 < 2**64


def test_block_key_rejects_unknown_phase():
    with pytest.raises(KeyError):
        block_key(0, 0, "sideways", 0, 0, 1)


# ----------------------------------------------------------------------
# Policy API
# ----------------------------------------------------------------------
def test_keyed_noise_is_order_and_form_independent():
    rounding = KeyedRounding(11)
    rounding.set_epoch(5)
    a = rounding.block_noise("fwd", 0, 1, 2, shape=(6, 4))
    out = np.empty((6, 4), dtype=np.float64)
    rounding.block_noise("fwd", 0, 1, 2, out=out)
    assert np.array_equal(a, out)
    # Drawing other blocks in between must not perturb a block's stream.
    rounding.block_noise("bwd", 2, 0, 1, shape=(3, 3))
    assert np.array_equal(a, rounding.block_noise("fwd", 0, 1, 2, shape=(6, 4)))
    # The epoch is a coordinate.
    rounding.set_epoch(6)
    assert not np.array_equal(a, rounding.block_noise("fwd", 0, 1, 2, shape=(6, 4)))
    assert (a >= 0).all() and (a < 1).all()


def test_as_rounding_coercion():
    gen = np.random.default_rng(0)
    stream = as_rounding(gen)
    assert isinstance(stream, StreamRounding) and stream.rng is gen
    keyed = KeyedRounding(3)
    assert as_rounding(keyed) is keyed
    assert as_rounding(stream) is stream
    with pytest.raises(TypeError):
        as_rounding(42)
    # set_epoch is part of both policies' surface (no-op for streams).
    stream.set_epoch(9)
    assert stream.rng is gen


def test_encoders_expose_rng_only_in_stream_mode():
    gen = np.random.default_rng(0)
    assert MixedPrecisionEncoder(gen).rng is gen
    assert MixedPrecisionEncoder(KeyedRounding(0)).rng is None
    assert FusedStepEncoder(gen).rng is gen
    assert FusedStepEncoder(KeyedRounding(0)).rng is None


def test_keyed_encode_requires_block_coordinates():
    enc = MixedPrecisionEncoder(KeyedRounding(0))
    h = np.zeros((4, 3), dtype=np.float32)
    with pytest.raises(ValueError, match="coordinates"):
        enc.encode(h, np.full(4, 2))
    fused = FusedStepEncoder(KeyedRounding(0))
    plan = fused.plan_for(
        "k",
        [(0, 1)],
        np.array([4], dtype=np.int64),
        [(0, 0, 4)],
        np.arange(4, dtype=np.int64),
        np.full(4, 2, dtype=np.int64),
        3,
    )
    fused.gather_step(plan, {0: h})
    with pytest.raises(ValueError, match="coordinates"):
        fused.quantize_pack_step(plan)


# ----------------------------------------------------------------------
# Encoder equivalence and order independence
# ----------------------------------------------------------------------
def _synthetic_step(seed, rows=24, dim=8):
    """A 3-source, 4-destination step in the topology builder's layout:
    pairs device-major (sources ascending, peers ascending within one),
    device blocks contiguous in cat order."""
    gen = np.random.default_rng(seed)
    pairs = [(0, 1), (0, 2), (1, 0), (1, 3), (2, 1), (2, 3)]
    counts = gen.integers(5, rows, len(pairs)).astype(np.int64)
    n = int(counts.sum())
    values = {r: gen.normal(size=(64, dim)).astype(np.float32) for r in range(3)}
    bounds = np.concatenate([[0], np.cumsum(counts)])
    cat_idx = np.concatenate([gen.integers(0, 64, c) for c in counts]).astype(np.int64)
    bits_cat = gen.choice([2, 4, 8], size=n)
    blocks = []
    for rank in range(3):
        spans = [i for i, (src, _) in enumerate(pairs) if src == rank]
        blocks.append((rank, int(bounds[spans[0]]), int(bounds[spans[-1] + 1])))
    return pairs, counts, bounds, cat_idx, bits_cat, values, blocks, dim


def test_fused_keyed_matches_per_pair_keyed_bitwise():
    pairs, counts, bounds, cat_idx, bits_cat, values, blocks, dim = _synthetic_step(3)
    fused = FusedStepEncoder(KeyedRounding(17))
    plan = fused.plan_for("k", pairs, counts, blocks, cat_idx, bits_cat, dim)
    payloads = fused.encode_step(plan, values, coords=("fwd", 1))

    per_pair = MixedPrecisionEncoder(KeyedRounding(17))
    for i, (src, dst) in enumerate(pairs):
        h = values[src][cat_idx[bounds[i] : bounds[i + 1]]]
        expected = per_pair.encode(
            h, bits_cat[bounds[i] : bounds[i + 1]], block=("fwd", 1, src, dst)
        )
        got = payloads[(src, dst)]
        assert got.group_bits == expected.group_bits
        for a, b in zip(got.streams, expected.streams):
            assert np.array_equal(a, b)
        for a, b in zip(got.zero_points, expected.zero_points):
            assert np.array_equal(a, b)
        for a, b in zip(got.scales, expected.scales):
            assert np.array_equal(a, b)


@pytest.mark.parametrize("n_shards", [2, 3, 8])
def test_sharded_encode_is_bitwise_shard_and_order_invariant(n_shards):
    pairs, counts, _, cat_idx, bits_cat, values, blocks, dim = _synthetic_step(5)
    whole = FusedStepEncoder(KeyedRounding(9))
    plan_w = whole.plan_for("k", pairs, counts, blocks, cat_idx, bits_cat, dim)
    reference = whole.encode_step(plan_w, values, coords=("bwd", 2))

    sharded = FusedStepEncoder(KeyedRounding(9))
    plan_s = sharded.plan_for("k", pairs, counts, blocks, cat_idx, bits_cat, dim)
    sharded.gather_step(plan_s, values)
    shards = sharded.shards_for(plan_s, n_shards)
    assert 1 <= len(shards) <= min(n_shards, len(pairs))
    # Shards tile the pair list exactly once.
    spans = sorted((s.pair_lo, s.pair_hi) for s in shards)
    assert spans[0][0] == 0 and spans[-1][1] == len(pairs)
    assert all(a[1] == b[0] for a, b in zip(spans, spans[1:]))

    shuffled = list(shards)
    random.Random(n_shards).shuffle(shuffled)
    got = {}
    for shard in shuffled:
        got.update(sharded.quantize_pack_shard(plan_s, shard, coords=("bwd", 2)))
    assert set(got) == set(reference)
    for pair in reference:
        for a, b in zip(reference[pair].streams, got[pair].streams):
            assert np.array_equal(a, b)
        for a, b in zip(reference[pair].zero_points, got[pair].zero_points):
            assert np.array_equal(a, b)


def test_stream_mode_pins_to_one_shard():
    pairs, counts, _, cat_idx, bits_cat, values, blocks, dim = _synthetic_step(8)
    enc = FusedStepEncoder(np.random.default_rng(0))
    plan = enc.plan_for("k", pairs, counts, blocks, cat_idx, bits_cat, dim)
    assert len(enc.shards_for(plan, 8)) == 1  # order-dependent stream
    keyed = FusedStepEncoder(KeyedRounding(0))
    plan_k = keyed.plan_for("k", pairs, counts, blocks, cat_idx, bits_cat, dim)
    assert len(keyed.shards_for(plan_k, 8)) > 1
