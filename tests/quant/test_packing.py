"""Bit packing: exact round trips at every width."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.packing import pack_bits, unpack_bits


@pytest.mark.parametrize("bits,per_byte", [(1, 8), (2, 4), (4, 2), (8, 1)])
def test_packed_size(bits, per_byte):
    codes = np.zeros(17, dtype=np.uint8)
    stream = pack_bits(codes, bits)
    assert stream.size == -(-17 // per_byte)


def test_known_2bit_layout():
    stream = pack_bits(np.array([1, 2, 3, 0], dtype=np.uint8), 2)
    # little-endian in-byte: 1 | 2<<2 | 3<<4 | 0<<6 = 0b00111001
    assert stream.tolist() == [0b00111001]


def test_roundtrip_empty():
    assert unpack_bits(pack_bits(np.zeros(0, dtype=np.uint8), 2), 2, 0).size == 0


def test_out_of_range_codes_rejected():
    with pytest.raises(ValueError, match="range"):
        pack_bits(np.array([4], dtype=np.uint8), 2)


def test_short_stream_rejected():
    with pytest.raises(ValueError, match="short"):
        unpack_bits(np.zeros(1, dtype=np.uint8), 2, 100)
    with pytest.raises(ValueError, match="short"):
        unpack_bits(np.zeros(1, dtype=np.uint8), 8, 2)


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        unpack_bits(np.zeros(1, dtype=np.uint8), 2, -1)


@given(
    st.sampled_from([1, 2, 4, 8]),
    st.lists(st.integers(min_value=0, max_value=255), min_size=0, max_size=200),
)
@settings(max_examples=120, deadline=None)
def test_property_roundtrip(bits, values):
    codes = np.array([v % (1 << bits) for v in values], dtype=np.uint8)
    stream = pack_bits(codes, bits)
    assert np.array_equal(unpack_bits(stream, bits, codes.size), codes)
    # Compression: packed stream is ceil(n*bits/8) bytes.
    assert stream.size == -(-codes.size * bits // 8)


# ----------------------------------------------------------------------
# Big-endian lane-loop fallback (forced on little-endian CI)
# ----------------------------------------------------------------------
@pytest.fixture()
def big_endian_pack(monkeypatch):
    """Force ``pack_bits`` down the byte-order-agnostic lane loop.

    The word-merge kernel reinterprets code bytes as little-endian
    machine words, so big-endian hosts take a per-lane shift-OR fallback
    instead.  CI never runs big-endian hardware; flipping the flag is the
    only way the fallback gets exercised — its wire bytes must be
    *identical* to the word-merge kernel's (the stream layout is a wire
    format, not a host detail).
    """
    import repro.quant.packing as packing

    monkeypatch.setattr(packing, "_LITTLE_ENDIAN", False)
    return packing


@pytest.mark.parametrize("bits", [2, 4])
@pytest.mark.parametrize("n", [0, 1, 3, 4, 17, 256, 1001])
def test_big_endian_fallback_matches_word_merge(big_endian_pack, monkeypatch, bits, n):
    codes = np.random.default_rng(n + bits).integers(0, 1 << bits, n).astype(np.uint8)
    fallback = big_endian_pack.pack_bits(codes, bits)
    monkeypatch.setattr(big_endian_pack, "_LITTLE_ENDIAN", True)
    word_merge = big_endian_pack.pack_bits(codes, bits)
    assert np.array_equal(fallback, word_merge)


@pytest.mark.parametrize("bits", [1, 2, 4, 8])
def test_big_endian_fallback_roundtrips(big_endian_pack, bits):
    gen = np.random.default_rng(bits)
    codes = gen.integers(0, 1 << bits, 513).astype(np.uint8)
    stream = big_endian_pack.pack_bits(codes, bits)
    # The word-LUT unpack is byte-order-agnostic by construction (it
    # views the gathered words back as bytes), so it must invert the
    # fallback's streams exactly.
    assert np.array_equal(big_endian_pack.unpack_bits(stream, bits, codes.size), codes)


def test_big_endian_fallback_validates_and_pads(big_endian_pack):
    with pytest.raises(ValueError, match="range"):
        big_endian_pack.pack_bits(np.array([4], dtype=np.uint8), 2)
    # Ragged tail: zero-padding must match the word-merge layout.
    stream = big_endian_pack.pack_bits(np.array([3, 1, 2], dtype=np.uint8), 2)
    assert stream.tolist() == [0b00100111]


def test_big_endian_fallback_through_batched_kernels(big_endian_pack):
    from repro.quant.packing import pack_bits_batched, unpack_bits_batched

    gen = np.random.default_rng(0)
    counts = np.array([8, 24, 16], dtype=np.int64)
    codes = gen.integers(0, 4, int(counts.sum())).astype(np.uint8)
    streams = pack_bits_batched(codes, 2, counts)
    assert np.array_equal(unpack_bits_batched(streams, 2, counts), codes)
