"""Bit packing: exact round trips at every width."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.packing import pack_bits, unpack_bits


@pytest.mark.parametrize("bits,per_byte", [(1, 8), (2, 4), (4, 2), (8, 1)])
def test_packed_size(bits, per_byte):
    codes = np.zeros(17, dtype=np.uint8)
    stream = pack_bits(codes, bits)
    assert stream.size == -(-17 // per_byte)


def test_known_2bit_layout():
    stream = pack_bits(np.array([1, 2, 3, 0], dtype=np.uint8), 2)
    # little-endian in-byte: 1 | 2<<2 | 3<<4 | 0<<6 = 0b00111001
    assert stream.tolist() == [0b00111001]


def test_roundtrip_empty():
    assert unpack_bits(pack_bits(np.zeros(0, dtype=np.uint8), 2), 2, 0).size == 0


def test_out_of_range_codes_rejected():
    with pytest.raises(ValueError, match="range"):
        pack_bits(np.array([4], dtype=np.uint8), 2)


def test_short_stream_rejected():
    with pytest.raises(ValueError, match="short"):
        unpack_bits(np.zeros(1, dtype=np.uint8), 2, 100)
    with pytest.raises(ValueError, match="short"):
        unpack_bits(np.zeros(1, dtype=np.uint8), 8, 2)


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        unpack_bits(np.zeros(1, dtype=np.uint8), 2, -1)


@given(
    st.sampled_from([1, 2, 4, 8]),
    st.lists(st.integers(min_value=0, max_value=255), min_size=0, max_size=200),
)
@settings(max_examples=120, deadline=None)
def test_property_roundtrip(bits, values):
    codes = np.array([v % (1 << bits) for v in values], dtype=np.uint8)
    stream = pack_bits(codes, bits)
    assert np.array_equal(unpack_bits(stream, bits, codes.size), codes)
    # Compression: packed stream is ceil(n*bits/8) bytes.
    assert stream.size == -(-codes.size * bits // 8)
