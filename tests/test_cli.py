"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "adaqp" in out and "reddit" in out


def test_info_reports_host_and_transport_resolution(capsys):
    """Satellite (ISSUE 5): auto-selection decisions are debuggable from
    the CLI — core count, spare-core verdict, resolved rng/transport."""
    from repro.comm.transport import detected_cores, host_has_spare_core

    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert f"{detected_cores()} core(s) detected" in out
    verdict = "yes" if host_has_spare_core() else "no"
    assert f"spare core for transport workers: {verdict}" in out
    assert "rng_mode=keyed" in out
    if host_has_spare_core():
        assert "worker transport with" in out
    else:
        assert "synchronous transport (no spare core)" in out


def test_train_transport_and_rng_flags(capsys):
    code = main(
        [
            "train", "--system", "adaqp-fixed", "--dataset", "yelp",
            "--setting", "2M-2D", "--epochs", "2", "--hidden", "8",
            "--transport", "worker:2", "--rng-mode", "keyed",
            "--pipeline-depth", "2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    assert "pipeline depth 2" in out
    with pytest.raises(SystemExit):
        build_parser().parse_args(["train", "--rng-mode", "chaotic"])
    # The PR-6 legacy knobs are gone, not silently ignored.
    with pytest.raises(SystemExit):
        build_parser().parse_args(["train", "--transport-workers", "2"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["train", "--no-async-transport"])


def test_partition_command(capsys):
    assert main(["partition", "--dataset", "yelp", "--parts", "2"]) == 0
    out = capsys.readouterr().out
    assert "edge cut" in out
    assert "remote-neighbor ratio" in out


def test_train_command_small(capsys):
    code = main(
        [
            "train", "--system", "vanilla", "--dataset", "yelp",
            "--setting", "2M-1D", "--epochs", "2", "--hidden", "8",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "throughput" in out


def test_train_adaqp_prints_bits(capsys):
    code = main(
        [
            "train", "--system", "adaqp", "--dataset", "yelp",
            "--setting", "2M-1D", "--epochs", "3", "--hidden", "8",
            "--period", "2",
        ]
    )
    assert code == 0
    assert "bit-width histogram" in capsys.readouterr().out


def test_train_checkpoint_kill_resume_smoke(capsys, tmp_path):
    """ISSUE 9's CLI smoke: checkpoint a short run, 'kill' it (stop at an
    epoch boundary), resume with a fault injected — final losses match a
    clean uninterrupted run bitwise, and `repro info` reports the
    transport health of the last run."""
    base = [
        "train", "--system", "adaqp-fixed", "--dataset", "yelp",
        "--setting", "2M-2D", "--hidden", "8", "--transport", "sync",
    ]
    assert main(base + ["--epochs", "4"]) == 0
    clean_out = capsys.readouterr().out
    clean_final = [
        line for line in clean_out.splitlines() if "final val accuracy" in line
    ]

    ck = str(tmp_path / "ck")
    assert main(base + ["--epochs", "2", "--checkpoint-dir", ck]) == 0
    capsys.readouterr()
    code = main(
        base
        + [
            "--epochs", "4", "--checkpoint-dir", ck, "--resume",
            "--inject-fault", "drop:fwd/L1@2",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "resumed from checkpoint at epoch 2" in out
    assert "fault counters" in out and "replays" in out
    # The interrupted + resumed + faulted run ends where the clean one did.
    assert clean_final and all(line in out for line in clean_final)

    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "last run: adaqp-fixed on yelp" in out
    assert "all workers exited cleanly" in out


def test_train_fault_flag_validation(capsys):
    assert main(["train", "--inject-fault", "meteor:x"]) == 2
    assert "unknown fault kind" in capsys.readouterr().err
    assert main(["train", "--resume"]) == 2
    assert "--resume requires --checkpoint-dir" in capsys.readouterr().err


def test_experiment_command(capsys):
    assert main(["experiment", "table3"]) == 0
    assert "Table 3" in capsys.readouterr().out


def test_invalid_choices_rejected():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["train", "--system", "warp-drive"])
    with pytest.raises(SystemExit):
        parser.parse_args(["experiment", "table99"])
    with pytest.raises(SystemExit):
        parser.parse_args([])
