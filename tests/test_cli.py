"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "adaqp" in out and "reddit" in out


def test_partition_command(capsys):
    assert main(["partition", "--dataset", "yelp", "--parts", "2"]) == 0
    out = capsys.readouterr().out
    assert "edge cut" in out
    assert "remote-neighbor ratio" in out


def test_train_command_small(capsys):
    code = main(
        [
            "train", "--system", "vanilla", "--dataset", "yelp",
            "--setting", "2M-1D", "--epochs", "2", "--hidden", "8",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "throughput" in out


def test_train_adaqp_prints_bits(capsys):
    code = main(
        [
            "train", "--system", "adaqp", "--dataset", "yelp",
            "--setting", "2M-1D", "--epochs", "3", "--hidden", "8",
            "--period", "2",
        ]
    )
    assert code == 0
    assert "bit-width histogram" in capsys.readouterr().out


def test_experiment_command(capsys):
    assert main(["experiment", "table3"]) == 0
    assert "Table 3" in capsys.readouterr().out


def test_invalid_choices_rejected():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["train", "--system", "warp-drive"])
    with pytest.raises(SystemExit):
        parser.parse_args(["experiment", "table99"])
    with pytest.raises(SystemExit):
        parser.parse_args([])
